"""Memoization of the Zipf analytic machinery and sampler CDFs."""

import numpy as np
import pytest

from repro.data import zipf


def test_harmonic_memoized_and_exact():
    zipf.harmonic.cache_clear()
    first = zipf.harmonic(1_000_000, 0.75)
    info = zipf.harmonic.cache_info()
    second = zipf.harmonic(1_000_000, 0.75)
    assert first == second
    assert zipf.harmonic.cache_info().hits == info.hits + 1
    # Spot value: H(n, 0) is n, H(3, 1) = 1 + 1/2 + 1/3.
    assert zipf.harmonic(10, 0.0) == 10.0
    assert zipf.harmonic(3, 1.0) == pytest.approx(11.0 / 6.0)


def test_pmf_head_returns_shared_read_only_array():
    first = zipf.pmf_head(1 << 20, 0.5)
    second = zipf.pmf_head(1 << 20, 0.5)
    assert first is second
    assert not first.flags.writeable
    with pytest.raises(ValueError):
        first[0] = 0.0
    # Read-only arrays still work as bincount weights (the stats path).
    np.bincount(np.zeros(first.shape[0], dtype=np.int64), weights=first)


def test_exact_sampler_identical_and_cached():
    n, s = 100_000, 0.9
    draws_a = zipf.sample(n, s, 5000, np.random.default_rng(7))
    draws_b = zipf.sample(n, s, 5000, np.random.default_rng(7))
    np.testing.assert_array_equal(draws_a, draws_b)
    assert (n, s) in zipf._EXACT_CDF_CACHE
    assert not zipf._EXACT_CDF_CACHE[(n, s)].flags.writeable


def test_exact_cdf_cache_is_bounded():
    zipf._EXACT_CDF_CACHE.clear()
    for i in range(zipf._EXACT_CDF_CACHE_MAX + 3):
        zipf.sample(1000 + i, 0.5, 10, np.random.default_rng(0))
    assert len(zipf._EXACT_CDF_CACHE) <= zipf._EXACT_CDF_CACHE_MAX


def test_hybrid_sampler_identical_across_calls():
    n = (1 << 22) + 1  # beyond the exact limit: hybrid path
    draws_a = zipf.sample(n, 0.8, 4000, np.random.default_rng(3))
    draws_b = zipf.sample(n, 0.8, 4000, np.random.default_rng(3))
    np.testing.assert_array_equal(draws_a, draws_b)
    assert draws_a.min() >= 0 and draws_a.max() < n
