"""Hash-table build semantics: vectorized vs the Listing 2 reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidConfigError
from repro.gpusim.atomics import (
    NIL,
    atomic_exchange,
    chain_insert,
    chain_insert_reference,
)


def test_atomic_exchange_returns_old_value():
    arr = np.array([10, 20])
    assert atomic_exchange(arr, 0, 99) == 10
    assert arr[0] == 99


def test_reference_build_small():
    table = chain_insert_reference(np.array([0, 1, 0]), nslots=2)
    # Entry 2 was inserted last into slot 0 -> head; links to entry 0.
    assert table.heads[0] == 2
    assert table.next[2] == 0
    assert table.next[0] == NIL
    assert table.heads[1] == 1


def test_chain_walk_lists_entries_newest_first():
    table = chain_insert_reference(np.array([3, 3, 3]), nslots=4)
    assert table.chain(3) == [2, 1, 0]
    assert table.chain(0) == []


@settings(max_examples=60, deadline=None)
@given(
    slots=st.lists(st.integers(min_value=0, max_value=15), max_size=200),
)
def test_vectorized_equals_reference(slots):
    slots = np.asarray(slots, dtype=np.int64)
    fast = chain_insert(slots, nslots=16)
    ref = chain_insert_reference(slots, nslots=16)
    assert np.array_equal(fast.heads, ref.heads)
    assert np.array_equal(fast.next, ref.next)


@settings(max_examples=30, deadline=None)
@given(
    slots=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100),
)
def test_every_entry_reachable_exactly_once(slots):
    slots = np.asarray(slots, dtype=np.int64)
    table = chain_insert(slots, nslots=8)
    seen: list[int] = []
    for slot in range(8):
        seen.extend(table.chain(slot))
    assert sorted(seen) == list(range(len(slots)))


def test_chain_lengths_match_slot_histogram():
    slots = np.array([0, 0, 1, 5, 5, 5, 5])
    table = chain_insert(slots, nslots=8)
    assert list(table.chain_lengths()) == [2, 1, 0, 0, 0, 4, 0, 0]


def test_empty_insert():
    table = chain_insert(np.array([], dtype=np.int64), nslots=4)
    assert table.num_entries == 0
    assert np.all(table.heads == NIL)


def test_out_of_range_slots_rejected():
    with pytest.raises(InvalidConfigError):
        chain_insert(np.array([4]), nslots=4)
    with pytest.raises(InvalidConfigError):
        chain_insert_reference(np.array([-1]), nslots=4)
