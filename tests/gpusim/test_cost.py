"""Cost-model invariants: monotonicity and option effects."""

import numpy as np
import pytest

from repro.gpusim.cost import CoPartitionStats, GpuCostModel, KernelCost


@pytest.fixture()
def model() -> GpuCostModel:
    return GpuCostModel()


def _uniform_stats(n: int, fanout: int, matches: float | None = None) -> CoPartitionStats:
    sizes = np.full(fanout, n / fanout)
    total_matches = float(n if matches is None else matches)
    return CoPartitionStats(
        build_sizes=sizes,
        probe_sizes=sizes,
        matches=CoPartitionStats.split_matches(sizes, sizes, total_matches),
    )


def test_kernel_cost_addition_and_scaling():
    a = KernelCost(1.0, {"x": 1.0})
    b = KernelCost(2.0, {"x": 0.5, "y": 1.5})
    total = a + b
    assert total.seconds == 3.0
    assert total.breakdown == {"x": 1.5, "y": 1.5}
    assert (a.scaled(2.0)).seconds == 2.0
    assert KernelCost.zero().seconds == 0.0


def test_split_matches_proportional_to_products():
    matches = CoPartitionStats.split_matches(
        np.array([1.0, 2.0]), np.array([3.0, 1.0]), 10.0
    )
    assert matches[0] == pytest.approx(6.0)
    assert matches[1] == pytest.approx(4.0)
    assert CoPartitionStats.split_matches(np.zeros(2), np.zeros(2), 5.0).sum() == 0


def test_partition_pass_monotone_in_tuples(model):
    small = model.partition_pass(1_000_000, 8, 256).seconds
    large = model.partition_pass(4_000_000, 8, 256).seconds
    assert large > small


def test_partition_pass_metadata_penalizes_fanout(model):
    low = model.partition_pass(1_000_000, 8, 256).seconds
    high = model.partition_pass(1_000_000, 8, 1 << 15).seconds
    assert high > low


def test_partition_imbalance_inflates(model):
    base = model.partition_pass(1_000_000, 8, 256).seconds
    skewed = model.partition_pass(1_000_000, 8, 256, imbalance=2.0).seconds
    assert skewed > 1.5 * base


def test_multi_pass_partition_adds_passes(model):
    one = model.multi_pass_partition(1_000_000, 8, [8]).seconds
    two = model.multi_pass_partition(1_000_000, 8, [8, 7]).seconds
    assert two > 1.8 * one


def test_hash_join_charge_build_toggle(model):
    stats = _uniform_stats(1 << 22, 1 << 10)
    with_build = model.join_copartitions_hash(
        stats, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512
    ).seconds
    probe_only = model.join_copartitions_hash(
        stats, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512,
        charge_build=False,
    ).seconds
    assert probe_only < with_build


def test_device_memory_tables_slower_than_shared(model):
    stats = _uniform_stats(1 << 22, 1 << 10)
    shared = model.join_copartitions_hash(
        stats, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512
    ).seconds
    device = model.join_copartitions_hash(
        stats, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512,
        use_shared_memory=False,
    ).seconds
    assert device > shared


def test_materialization_adds_cost(model):
    stats = _uniform_stats(1 << 22, 1 << 10)
    agg = model.join_copartitions_hash(
        stats, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512
    ).seconds
    mat = model.join_copartitions_hash(
        stats, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512,
        materialize=True,
    ).seconds
    assert mat > agg


def test_oversized_partitions_fall_back_to_block_passes(model):
    fits = CoPartitionStats(
        build_sizes=np.array([4096.0]),
        probe_sizes=np.array([1e6]),
        matches=np.array([1e6]),
    )
    oversized = CoPartitionStats(
        build_sizes=np.array([40960.0]),  # 10 block passes over the probe
        probe_sizes=np.array([1e6]),
        matches=np.array([1e6]),
    )
    a = model.join_copartitions_hash(
        fits, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512
    ).seconds
    b = model.join_copartitions_hash(
        oversized, 8, ht_slots=2048, elements_per_block=4096, threads_per_block=512
    ).seconds
    assert b > 3 * a


def test_nlj_cost_grows_with_partition_size_quadratically(model):
    small = _uniform_stats(1 << 20, 1 << 12)  # 256-element partitions
    large = _uniform_stats(1 << 20, 1 << 9)  # 2048-element partitions
    a = model.join_copartitions_nlj(
        small, 8, differing_bits=10, threads_per_block=1024
    ).seconds
    b = model.join_copartitions_nlj(
        large, 8, differing_bits=10, threads_per_block=1024
    ).seconds
    assert b > 1.5 * a


def test_nlj_cost_grows_with_differing_bits(model):
    stats = _uniform_stats(1 << 20, 1 << 10)
    few = model.join_copartitions_nlj(
        stats, 8, differing_bits=4, threads_per_block=1024
    ).seconds
    many = model.join_copartitions_nlj(
        stats, 8, differing_bits=20, threads_per_block=1024
    ).seconds
    assert many > few


def test_random_access_cost_grows_with_footprint(model):
    accesses = 1e6
    costs = [
        model.random_access_seconds(accesses, footprint)
        for footprint in (1e6, 1e8, 1e10)
    ]
    assert costs[0] < costs[1] < costs[2]
    assert model.random_access_seconds(0, 1e9) == 0.0


def test_nonpartitioned_probe_perfect_cheaper_than_chaining(model):
    chaining = model.nonpartitioned_probe(1e7, 1e7, 8)
    perfect = model.nonpartitioned_probe(1e7, 1e7, 8, accesses_per_probe=1.0)
    assert perfect.seconds < chaining.seconds


def test_gather_random_more_expensive_than_sequential(model):
    random = model.gather_payload(1e7, 64, random=True).seconds
    sequential = model.gather_payload(1e7, 64, random=False).seconds
    assert random > sequential
    assert model.gather_payload(0, 64, random=True).seconds == 0.0


def test_build_tables_seconds_scales(model):
    assert model.build_tables_seconds(2e7, 8) > model.build_tables_seconds(1e6, 8)
