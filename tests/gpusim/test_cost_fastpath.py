"""Fast-path vs seed-path equivalence of the scaled join evaluators.

The scaled evaluators (:meth:`GpuCostModel.hash_join_evaluator`,
:meth:`GpuCostModel.nlj_join_evaluator`) must reproduce the one-shot
kernel formulas — which are unchanged from the seed — to within 1e-9
for every configuration regime the strategies hit: uniform and Zipf
partition histograms, the shared-memory fallback (build partitions
overflowing ``elements_per_block``), device-memory tables,
materialization, probe-only (``charge_build=False``) invocations, and
partial trailing chunks.
"""

import numpy as np
import pytest

from repro.core import GpuJoinConfig, create_strategy, estimate_cache
from repro.data import stats as stats_mod
from repro.data import unique_pair, zipf_pair
from repro.gpusim.cost import CoPartitionStats, GpuCostModel

TOLERANCE = 1e-9

SCALES = (1.0, 0.5, 0.015625, 1e-7)


def scaled_stats(build, probe, matches, scale):
    """Stats the way the chunk loops build them: probe side and matches
    scaled by the chunk fraction, matches split per partition."""
    probe_scaled = probe * scale
    return CoPartitionStats(
        build_sizes=build,
        probe_sizes=probe_scaled,
        matches=CoPartitionStats.split_matches(
            build, probe_scaled, matches * scale
        ),
    )


def histogram_cases():
    model = GpuCostModel()
    total_bits = 15
    uniform = unique_pair(32_000_000)
    zipf = zipf_pair(32_000_000, 0.75, skew_side="both")
    cases = []
    for name, spec in (("uniform", uniform), ("zipf", zipf)):
        build = stats_mod.expected_partition_sizes(spec.build, total_bits)
        probe = stats_mod.expected_partition_sizes(spec.probe, total_bits)
        matches = stats_mod.expected_join_cardinality(spec)
        cases.append((name, model, build, probe, matches))
    # Overflow regime: 2^6 partitions of a 8M build vastly exceed the
    # 4096-element block working set, forcing multi-pass fallback.
    spec = unique_pair(8_000_000)
    build = stats_mod.expected_partition_sizes(spec.build, 6)
    probe = stats_mod.expected_partition_sizes(spec.probe, 6)
    cases.append(
        ("fallback", model, build, probe, stats_mod.expected_join_cardinality(spec))
    )
    return cases


@pytest.mark.parametrize(
    "name,model,build,probe,matches",
    histogram_cases(),
    ids=lambda value: value if isinstance(value, str) else "",
)
@pytest.mark.parametrize("charge_build", [True, False])
@pytest.mark.parametrize("use_shared_memory", [True, False])
@pytest.mark.parametrize("materialize", [True, False])
def test_hash_evaluator_matches_one_shot(
    name, model, build, probe, matches, charge_build, use_shared_memory, materialize
):
    kwargs = dict(
        ht_slots=2048,
        elements_per_block=4096,
        threads_per_block=512,
        use_shared_memory=use_shared_memory,
        materialize=materialize,
        out_tuple_bytes=8.0,
        charge_build=charge_build,
    )
    evaluator = model.hash_join_evaluator(build, probe, matches, 8.0, **kwargs)
    for scale in SCALES:
        reference = model.join_copartitions_hash(
            scaled_stats(build, probe, matches, scale), 8.0, **kwargs
        )
        assert evaluator.seconds(scale) == pytest.approx(
            reference.seconds, abs=TOLERANCE
        )


@pytest.mark.parametrize(
    "name,model,build,probe,matches",
    histogram_cases(),
    ids=lambda value: value if isinstance(value, str) else "",
)
@pytest.mark.parametrize("materialize", [True, False])
def test_nlj_evaluator_matches_one_shot(
    name, model, build, probe, matches, materialize
):
    kwargs = dict(
        differing_bits=7,
        threads_per_block=512,
        materialize=materialize,
        out_tuple_bytes=8.0,
    )
    evaluator = model.nlj_join_evaluator(build, probe, matches, 8.0, **kwargs)
    for scale in SCALES:
        reference = model.join_copartitions_nlj(
            scaled_stats(build, probe, matches, scale), 8.0, **kwargs
        )
        assert evaluator.seconds(scale) == pytest.approx(
            reference.seconds, abs=TOLERANCE
        )


def test_evaluator_memoizes_per_scale():
    model = GpuCostModel()
    build = np.full(1 << 10, 900.0)
    probe = np.full(1 << 10, 2100.0)
    evaluator = model.hash_join_evaluator(
        build, probe, 1e6, 8.0,
        ht_slots=2048, elements_per_block=4096, threads_per_block=512,
    )
    assert evaluator.cost(0.5) is evaluator.cost(0.5)
    assert evaluator.cost(0.5) is not evaluator.cost(0.25)


def test_evaluator_handles_empty_and_zero_partitions():
    model = GpuCostModel()
    empty = np.empty(0, dtype=np.float64)
    evaluator = model.hash_join_evaluator(
        empty, empty, 0.0, 8.0,
        ht_slots=2048, elements_per_block=4096, threads_per_block=512,
    )
    reference = model.join_copartitions_hash(
        CoPartitionStats(empty, empty, empty), 8.0,
        ht_slots=2048, elements_per_block=4096, threads_per_block=512,
    )
    assert evaluator.seconds(1.0) == pytest.approx(reference.seconds, abs=TOLERANCE)


@pytest.mark.parametrize(
    "key,spec,config,kwargs",
    [
        ("coprocessing", unique_pair(512_000_000), None, {}),
        ("coprocessing", zipf_pair(512_000_000, 0.5, skew_side="both"), None, {}),
        (
            "coprocessing",
            unique_pair(512_000_000),
            GpuJoinConfig(total_radix_bits=8),  # overflow fallback regime
            {},
        ),
        ("coprocessing", unique_pair(512_000_000), None, {"materialize": True}),
        ("streaming", unique_pair(64_000_000, 1024_000_000), None, {}),
        ("streaming", unique_pair(64_000_000, 1024_000_000), None, {"materialize": True}),
    ],
    ids=["coproc-uniform", "coproc-zipf", "coproc-overflow", "coproc-mat",
         "streaming", "streaming-mat"],
)
def test_strategy_estimates_unchanged_by_memoization(key, spec, config, kwargs):
    """End-to-end: a cached estimate equals a cache-disabled recompute."""
    estimate_cache.clear()
    warm = create_strategy(key, config=config).estimate(spec, **kwargs).seconds
    hit = create_strategy(key, config=config).estimate(spec, **kwargs).seconds
    estimate_cache.configure(enabled=False)
    try:
        cold = create_strategy(key, config=config).estimate(spec, **kwargs).seconds
    finally:
        estimate_cache.configure(enabled=True)
    assert warm == pytest.approx(cold, abs=TOLERANCE)
    assert hit == pytest.approx(cold, abs=TOLERANCE)
