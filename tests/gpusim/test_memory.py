"""Shared/device memory accounting."""

import pytest

from repro.errors import DeviceMemoryOverflowError, SharedMemoryOverflowError
from repro.gpusim.device_memory import DeviceMemory
from repro.gpusim.shared_memory import (
    SharedMemoryArena,
    join_block_reservation,
    max_partition_fanout,
    partition_block_reservation,
)
from repro.gpusim.spec import GpuSpec


def test_arena_allocation_and_free():
    arena = SharedMemoryArena(capacity_bytes=1024)
    arena.allocate("a", 512)
    assert arena.used_bytes == 512 and arena.free_bytes == 512
    arena.free("a")
    assert arena.used_bytes == 0


def test_arena_overflow():
    arena = SharedMemoryArena(capacity_bytes=100)
    arena.allocate("a", 60)
    with pytest.raises(SharedMemoryOverflowError):
        arena.allocate("b", 50)


def test_arena_duplicate_and_negative():
    arena = SharedMemoryArena(capacity_bytes=100)
    arena.allocate("a", 10)
    with pytest.raises(SharedMemoryOverflowError):
        arena.allocate("a", 10)
    with pytest.raises(SharedMemoryOverflowError):
        arena.allocate("b", -1)


def test_join_block_reservation_components():
    nbytes = join_block_reservation(4096, 2048, 8)
    # build set + slot heads + 16-bit links + output buffer
    assert nbytes == 4096 * 8 + 2048 * 2 + 4096 * 2 + 1024


def test_papers_standard_config_fits_one_sm():
    gpu = GpuSpec()
    assert join_block_reservation(4096, 2048, 8) <= gpu.shared_mem_per_sm


def test_fig5_config_fits_one_sm():
    gpu = GpuSpec()
    assert join_block_reservation(2048, 256, 8) <= gpu.shared_mem_per_sm


def test_partition_block_reservation():
    assert partition_block_reservation(256, 1024, 8) == 256 * 8 + 1024 * 8


def test_max_partition_fanout_is_a_few_thousand():
    """The paper: per-pass fanout is capped at 'a few thousand' (§III-A)."""
    gpu = GpuSpec()
    fanout = max_partition_fanout(gpu.shared_mem_per_sm, 8)
    assert 1000 <= fanout <= 16384


def test_max_partition_fanout_overflow():
    with pytest.raises(SharedMemoryOverflowError):
        max_partition_fanout(100, 8, shuffle_elements=1024)


def test_device_memory_tracking():
    mem = DeviceMemory(capacity_bytes=1000)
    mem.allocate("x", 400)
    mem.allocate("y", 500)
    assert mem.used_bytes == 900 and mem.fits(100) and not mem.fits(101)
    mem.free("x")
    assert mem.used_bytes == 500
    mem.reset()
    assert mem.used_bytes == 0


def test_device_memory_overflow_and_errors():
    mem = DeviceMemory(capacity_bytes=100)
    with pytest.raises(DeviceMemoryOverflowError):
        mem.allocate("big", 101)
    mem.allocate("a", 10)
    with pytest.raises(DeviceMemoryOverflowError):
        mem.allocate("a", 10)
    with pytest.raises(DeviceMemoryOverflowError):
        mem.free("unknown")
