"""SM occupancy analysis."""

import pytest

from repro.errors import InvalidConfigError
from repro.gpusim.occupancy import (
    MAX_BLOCKS_PER_SM,
    MAX_THREADS_PER_SM,
    join_kernel_occupancy,
    occupancy_for,
    partition_kernel_occupancy,
)
from repro.gpusim.spec import GpuSpec

GPU = GpuSpec()


def test_papers_join_config_keeps_multiple_blocks_resident():
    occ = join_kernel_occupancy(
        GPU, elements_per_block=4096, ht_slots=2048, threads_per_block=512
    )
    assert occ.blocks_per_sm >= 2
    assert occ.limited_by == "shared_memory"
    assert 0 < occ.occupancy_fraction <= 1.0


def test_bigger_blocks_trade_occupancy():
    small = join_kernel_occupancy(
        GPU, elements_per_block=2048, ht_slots=256, threads_per_block=512
    )
    large = join_kernel_occupancy(
        GPU, elements_per_block=8192, ht_slots=4096, threads_per_block=512
    )
    assert small.blocks_per_sm > large.blocks_per_sm


def test_thread_limited_configuration():
    occ = occupancy_for(GPU, threads_per_block=1024, shared_bytes_per_block=128)
    assert occ.limited_by == "threads"
    assert occ.resident_threads == MAX_THREADS_PER_SM


def test_block_limited_configuration():
    occ = occupancy_for(GPU, threads_per_block=32, shared_bytes_per_block=0)
    assert occ.limited_by == "blocks"
    assert occ.blocks_per_sm == MAX_BLOCKS_PER_SM


def test_partition_kernel_occupancy():
    occ = partition_kernel_occupancy(GPU, fanout=256, threads_per_block=1024)
    assert occ.blocks_per_sm >= 2


def test_invalid_configurations_rejected():
    with pytest.raises(InvalidConfigError):
        occupancy_for(GPU, threads_per_block=0, shared_bytes_per_block=0)
    with pytest.raises(InvalidConfigError):
        occupancy_for(GPU, threads_per_block=2048, shared_bytes_per_block=0)
    with pytest.raises(InvalidConfigError):
        occupancy_for(
            GPU, threads_per_block=512,
            shared_bytes_per_block=GPU.shared_mem_per_sm + 1,
        )
