"""Hardware spec presets."""

import pytest

from repro.errors import InvalidConfigError
from repro.gpusim.spec import CpuSpec, GpuSpec, SystemSpec, gtx1080_system, v100_system


def test_default_system_is_the_papers_testbed():
    system = gtx1080_system()
    assert system.gpu.name == "GTX 1080"
    assert system.gpu.device_memory == 8 * 1024**3
    assert system.gpu.num_sms == 20
    assert system.cpu.total_cores == 24
    assert system.cpu.total_threads == 48
    assert system.interconnect.theoretical_bandwidth == pytest.approx(15.8e9)


def test_derived_quantities():
    gpu = GpuSpec()
    assert gpu.total_cores == 20 * 128
    assert gpu.total_shared_memory == 20 * 96 * 1024
    cpu = CpuSpec()
    assert cpu.total_memory_bandwidth == pytest.approx(110e9)


def test_v100_preset_is_strictly_faster():
    old, new = gtx1080_system(), v100_system()
    assert new.gpu.device_bandwidth > old.gpu.device_bandwidth
    assert new.gpu.device_memory > old.gpu.device_memory
    assert new.interconnect.pinned_bandwidth > old.interconnect.pinned_bandwidth


def test_invalid_gpu_spec_rejected():
    with pytest.raises(InvalidConfigError):
        GpuSpec(num_sms=0)


def test_pcie_bandwidth_shortcut():
    system = SystemSpec()
    assert system.pcie_bandwidth == system.interconnect.pinned_bandwidth
