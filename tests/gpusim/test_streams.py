"""CUDA-style streams/events lowering to the pipeline engine."""

import pytest

from repro.errors import SchedulingError
from repro.gpusim.streams import StreamContext
from repro.pipeline.tasks import GPU, H2D


def test_in_stream_operations_serialize():
    ctx = StreamContext()
    stream = ctx.stream("s", GPU)
    stream.launch("a", 1.0)
    stream.launch("b", 2.0)
    schedule = ctx.run()
    assert schedule.tasks["b"].start == 1.0
    assert schedule.makespan == 3.0


def test_independent_streams_overlap():
    ctx = StreamContext()
    ctx.stream("copy", H2D).launch("xfer", 3.0)
    ctx.stream("exec", GPU).launch("kernel", 3.0)
    assert ctx.run().makespan == 3.0


def test_event_synchronizes_across_streams():
    ctx = StreamContext()
    copy = ctx.stream("copy", H2D)
    exec_ = ctx.stream("exec", GPU)
    moved = copy.launch("xfer", 3.0)
    exec_.wait(moved)
    exec_.launch("kernel", 1.0)
    schedule = ctx.run()
    assert schedule.tasks["kernel"].start == 3.0


def test_streams_sharing_a_resource_serialize():
    """Two streams bound to one copy engine behave like CUDA streams
    sharing a DMA engine."""
    ctx = StreamContext()
    ctx.stream("copy1", H2D).launch("a", 2.0)
    ctx.stream("copy2", H2D).launch("b", 2.0)
    assert ctx.run().makespan == 4.0


def test_double_buffered_pipeline_via_streams():
    """The §IV-A skeleton from the module docstring: total time equals
    all transfers plus the last chunk's kernel."""
    ctx = StreamContext()
    copy = ctx.stream("copy", H2D)
    exec_ = ctx.stream("exec", GPU)
    done = []
    chunks, transfer, kernel = 8, 1.0, 0.25
    for i in range(chunks):
        if i >= 2:
            copy.wait(done[i - 2])
        moved = copy.launch(f"h2d[{i}]", transfer)
        exec_.wait(moved)
        done.append(exec_.launch(f"join[{i}]", kernel))
    schedule = ctx.run()
    assert schedule.makespan == pytest.approx(chunks * transfer + kernel)


def test_wait_none_is_noop():
    ctx = StreamContext()
    stream = ctx.stream("s", GPU)
    stream.wait(None)
    stream.launch("only", 1.0)
    assert ctx.run().makespan == 1.0


def test_synchronize_event_tracks_last_launch():
    ctx = StreamContext()
    stream = ctx.stream("s", GPU)
    with pytest.raises(SchedulingError):
        stream.synchronize_event()
    stream.launch("a", 1.0)
    event = stream.launch("b", 1.0)
    assert stream.synchronize_event() == event


def test_stream_is_memoized_by_name():
    ctx = StreamContext()
    assert ctx.stream("s", GPU) is ctx.stream("s", GPU)
