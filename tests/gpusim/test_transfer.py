"""Transfer-mechanism models: DMA, UVA, Unified Memory."""

import pytest

from repro.gpusim.spec import SystemSpec
from repro.gpusim.transfer import TransferModel


@pytest.fixture()
def model() -> TransferModel:
    return TransferModel(SystemSpec())


GB = 1e9


def test_pinned_faster_than_pageable(model):
    assert model.dma_seconds(GB, pinned=True) < model.dma_seconds(GB, pinned=False)


def test_pipelined_rate_below_pinned_peak(model):
    assert model.pipelined_dma_rate() < model.system.interconnect.pinned_bandwidth
    assert model.pipelined_dma_rate() > 0.8 * model.system.interconnect.pinned_bandwidth


def test_uva_sequential_slower_than_dma(model):
    assert model.uva_sequential_seconds(GB) > model.dma_seconds(GB)


def test_uva_random_pays_full_transactions(model):
    # 8-byte accesses each move a 128-byte transaction: 16x inflation.
    eight_byte = model.uva_random_seconds(1e6, 8)
    assert eight_byte == pytest.approx(
        1e6 * 128 / model.system.interconnect.pinned_bandwidth
    )
    # Accesses wider than the granularity split into several transactions.
    wide = model.uva_random_seconds(1e6, 512)
    assert wide == pytest.approx(4 * eight_byte)


def test_um_fault_overhead_makes_it_slower_than_dma(model):
    assert model.um_migration_seconds(GB) > model.dma_seconds(GB)


def test_um_thrashing_multiplies_traffic(model):
    fits = model.um_migration_seconds(GB, working_set_bytes=GB, reuse_passes=4)
    thrashes = model.um_migration_seconds(
        GB, working_set_bytes=100 * GB, reuse_passes=4
    )
    assert thrashes > 3 * fits


def test_transfer_seconds_linear_in_bytes(model):
    assert model.dma_seconds(2 * GB) == pytest.approx(2 * model.dma_seconds(GB))
