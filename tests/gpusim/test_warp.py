"""Warp primitive semantics, vectorized vs the per-lane reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidConfigError
from repro.gpusim.warp import WARP_SIZE, Warp, all_sync, any_sync, ballot, lane_ids, popc, shfl

lanes_strategy = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=WARP_SIZE,
    max_size=WARP_SIZE,
)


def test_lane_ids():
    assert list(lane_ids()) == list(range(32))


def test_ballot_single_warp():
    predicate = np.zeros(WARP_SIZE, dtype=bool)
    predicate[[0, 5, 31]] = True
    assert ballot(predicate) == np.uint32((1 << 0) | (1 << 5) | (1 << 31))


def test_ballot_batched_warps():
    predicate = np.zeros((3, WARP_SIZE), dtype=bool)
    predicate[1, 2] = True
    out = ballot(predicate)
    assert out.shape == (3,)
    assert list(out) == [0, 4, 0]


def test_ballot_rejects_non_warp_shapes():
    with pytest.raises(InvalidConfigError):
        ballot(np.zeros(31, dtype=bool))


@settings(max_examples=50, deadline=None)
@given(values=lanes_strategy, bit=st.integers(min_value=0, max_value=30))
def test_ballot_matches_reference_warp(values, bit):
    vec = ballot((np.asarray(values) & (1 << bit)) != 0)
    ref = Warp(values).ballot(lambda v, lane: bool(v & (1 << bit)))
    assert int(vec) == ref


def test_shfl_broadcast_scalar_lane():
    values = np.arange(WARP_SIZE)
    assert list(shfl(values, 7)) == [7] * WARP_SIZE


def test_shfl_matches_reference():
    values = list(range(100, 132))
    assert list(shfl(np.array(values), 3)) == Warp(values).shfl(3)


def test_shfl_per_lane_sources():
    values = np.arange(WARP_SIZE)
    sources = (np.arange(WARP_SIZE) + 1) % WARP_SIZE
    assert list(shfl(values, sources)) == list(sources)


def test_any_all_sync():
    none = np.zeros(WARP_SIZE, dtype=bool)
    some = none.copy()
    some[3] = True
    full = np.ones(WARP_SIZE, dtype=bool)
    assert not any_sync(none) and any_sync(some) and any_sync(full)
    assert not all_sync(some) and all_sync(full)


def test_popc():
    assert popc(np.uint32(0)) == 0
    assert popc(np.uint32(0xFFFFFFFF)) == 32
    assert popc(np.array([0b1011, 0b1])).tolist() == [3, 1]


def test_warp_requires_32_lanes():
    with pytest.raises(InvalidConfigError):
        Warp([1, 2, 3])
