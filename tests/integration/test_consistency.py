"""Cross-cutting consistency: estimate() vs run(), strategy agreement.

These are the contracts that make the paper-scale analytic results
trustworthy: the same cost formulas, fed with expected instead of
observed statistics, must reproduce the functional runs' metrics; and
all strategies must produce the *same join result*.
"""

import numpy as np
import pytest

from repro.core import (
    CoProcessingJoin,
    GpuJoinConfig,
    GpuNonPartitionedJoin,
    GpuPartitionedJoin,
    StreamingProbeJoin,
)
from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_join,
    naive_join_pairs,
    unique_pair,
)

CFG = GpuJoinConfig(total_radix_bits=6)


@pytest.mark.parametrize("n", [1 << 14, 1 << 16, 1 << 18])
def test_resident_estimate_tracks_run(n):
    spec = unique_pair(n)
    join = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=8))
    build, probe = generate_join(spec, seed=n)
    run_seconds = join.run(build, probe).metrics.seconds
    est_seconds = join.estimate(spec).seconds
    assert est_seconds == pytest.approx(run_seconds, rel=0.1)


def test_resident_estimate_tracks_run_with_duplicates():
    spec = JoinSpec(
        build=RelationSpec(n=1 << 16, distinct=1 << 12, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=1 << 17, distinct=1 << 12, distribution=Distribution.UNIFORM),
    )
    join = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=8))
    build, probe = generate_join(spec, seed=1)
    run_metrics = join.run(build, probe).metrics
    est_metrics = join.estimate(spec)
    assert est_metrics.seconds == pytest.approx(run_metrics.seconds, rel=0.15)
    assert est_metrics.output_tuples == pytest.approx(
        run_metrics.output_tuples, rel=0.05
    )


def test_streaming_estimate_tracks_run():
    spec = JoinSpec(
        build=RelationSpec(n=1 << 13),
        probe=RelationSpec(
            n=1 << 16, distinct=1 << 13, distribution=Distribution.UNIFORM
        ),
    )
    streaming = StreamingProbeJoin(config=CFG)
    build, probe = generate_join(spec, seed=2)
    run_metrics = streaming.run(build, probe).metrics
    est_metrics = streaming.estimate(spec)
    assert est_metrics.seconds == pytest.approx(run_metrics.seconds, rel=0.15)


def test_all_strategies_agree_on_the_join_result():
    spec = JoinSpec(
        build=RelationSpec(n=6000, distinct=900, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=10_000, distinct=900, distribution=Distribution.UNIFORM),
    )
    build, probe = generate_join(spec, seed=3)
    oracle = naive_join_pairs(build, probe)

    resident = GpuPartitionedJoin(config=CFG).run(build, probe, materialize=True)
    nlj = GpuPartitionedJoin(
        config=CFG.with_(probe_kernel="nlj")
    ).run(build, probe, materialize=True)
    nonpartitioned = GpuNonPartitionedJoin().run(build, probe, materialize=True)
    streaming = StreamingProbeJoin(config=CFG).run(build, probe, materialize=True)
    coproc = CoProcessingJoin(config=GpuJoinConfig(total_radix_bits=4)).run(
        build, probe, materialize=True, chunk_tuples=2500
    )

    for result in (resident, nlj, nonpartitioned, streaming, coproc):
        assert np.array_equal(result.pairs(), oracle)


def test_aggregates_match_across_strategies():
    build, probe = generate_join(unique_pair(1 << 12), seed=4)
    a = GpuPartitionedJoin(config=CFG).run(build, probe).aggregate
    b = GpuNonPartitionedJoin().run(build, probe).aggregate
    assert a == b


def test_throughput_metric_definition():
    """Throughput must be combined input tuples / runtime (§V-A)."""
    metrics = GpuPartitionedJoin().estimate(unique_pair(16_000_000))
    assert metrics.throughput == pytest.approx(32_000_000 / metrics.seconds)
