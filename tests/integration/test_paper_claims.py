"""The paper's headline claims, asserted against the full-scale models.

Each test pins one quotable claim from the paper to the reproduction's
output.  These duplicate (cheaply) what the per-figure benchmarks verify
alongside their tables.
"""

import pytest

from repro.core import (
    CoProcessingJoin,
    GpuNonPartitionedJoin,
    GpuPartitionedJoin,
    StreamingProbeJoin,
)
from repro.cpu import NpoJoin, ProJoin
from repro.data import Distribution, JoinSpec, RelationSpec, unique_pair
from repro.kernels.nonpartitioned import PERFECT

M = 1_000_000


def test_claim_in_gpu_throughput_billions():
    """Intro: 'Our GPU join algorithms can process 4.5 Billion
    tuples/second when data is GPU resident.'"""
    best = max(
        GpuPartitionedJoin().estimate(unique_pair(n * M)).throughput_billion
        for n in (16, 32, 64, 128)
    )
    assert 3.5 <= best <= 5.5


def test_claim_out_of_gpu_billion_per_second():
    """Intro: 'a throughput of 1 Billion tuples/second even if no data
    is GPU resident.'"""
    coproc = CoProcessingJoin().estimate(unique_pair(1024 * M))
    assert coproc.throughput_billion >= 1.0


def test_claim_streaming_saturates_pcie():
    """§V-C: streaming provides ~1.4 Btuples/s with the build resident,
    completely saturating PCIe."""
    spec = JoinSpec(
        build=RelationSpec(n=64 * M),
        probe=RelationSpec(n=2048 * M, distinct=64 * M, distribution=Distribution.UNIFORM),
    )
    streaming = StreamingProbeJoin()
    metrics = streaming.estimate(spec)
    assert metrics.throughput_billion == pytest.approx(1.4, abs=0.15)
    transfer_floor = spec.total_bytes / streaming.transfer.pipelined_dma_rate()
    assert metrics.seconds < 1.1 * transfer_floor


def test_claim_partitioned_beats_nonpartitioned_beyond_8m():
    """§V-B: the partitioned join 'outperforms the alternatives when the
    input relations have more than 8 million tuples.'"""
    partitioned = GpuPartitionedJoin()
    chaining = GpuNonPartitionedJoin()
    perfect = GpuNonPartitionedJoin(variant=PERFECT)
    for n in (32, 64, 128):
        spec = unique_pair(n * M)
        ours = partitioned.estimate(spec).throughput
        assert ours > chaining.estimate(spec).throughput
        assert ours > perfect.estimate(spec).throughput


def test_claim_nonpartitioned_wins_small():
    """§V-B: non-partitioned throughput 'starts high' at small sizes."""
    spec = unique_pair(1 * M)
    assert (
        GpuNonPartitionedJoin().estimate(spec).throughput
        > GpuPartitionedJoin().estimate(spec).throughput
    )


def test_claim_pro_beats_gpu_chaining_at_scale():
    """§V-D: 'PRO outperforms the non-partitioning GPU hash join for
    large enough datasets.'"""
    spec = unique_pair(128 * M)
    assert (
        ProJoin().estimate(spec).throughput
        > GpuNonPartitionedJoin().estimate(spec).throughput
    )


def test_claim_gpu_always_beats_cpu_counterpart():
    """§V-D: 'for all relation sizes, the GPU implementations always
    outperform their CPU counterparts', with up to ~4x for partitioned."""
    ratios = []
    for n in (1, 8, 32, 128):
        spec = unique_pair(n * M)
        gpu = GpuPartitionedJoin().estimate(spec).throughput
        cpu = ProJoin().estimate(spec).throughput
        assert gpu > cpu
        ratios.append(gpu / cpu)
        assert (
            GpuNonPartitionedJoin().estimate(spec).throughput
            > NpoJoin().estimate(spec).throughput * 0.45
        )
    assert max(ratios) >= 3.5  # "as high as 4 billion tuples/sec, a 4x speedup"


def test_claim_coprocessing_is_size_robust():
    """§V-C: 'in most cases, the throughput remains insensitive to the
    relation size.'"""
    coproc = CoProcessingJoin()
    small = coproc.estimate(unique_pair(256 * M)).throughput
    large = coproc.estimate(unique_pair(2048 * M)).throughput
    assert large == pytest.approx(small, rel=0.25)


def test_claim_six_threads_match_full_cpu():
    """§V-D / Fig 13."""
    spec = unique_pair(512 * M)
    assert (
        CoProcessingJoin().estimate(spec, threads=6).throughput
        > ProJoin().estimate(spec, threads=46).throughput
    )
