"""Co-partition hash build + probe against the naive-join oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.data import naive_join_pairs
from repro.errors import InvalidConfigError, SharedMemoryOverflowError
from repro.gpusim.cost import GpuCostModel
from repro.kernels.build_hash import build_copartition_tables
from repro.kernels.probe_hash import probe_copartitions
from repro.kernels.radix_partition import gpu_radix_partition

MODEL = GpuCostModel()


def _hash_join(build_keys, probe_keys, bits=(3,), nslots=16):
    build = Relation.from_keys(np.asarray(build_keys, dtype=np.int64))
    probe = Relation.from_keys(np.asarray(probe_keys, dtype=np.int64))
    pb, _ = gpu_radix_partition(build, list(bits), MODEL)
    pp, _ = gpu_radix_partition(probe, list(bits), MODEL)
    tables, _ = build_copartition_tables(
        pb, nslots=nslots, elements_per_block=4096, cost_model=MODEL
    )
    result = probe_copartitions(
        tables, pp, elements_per_block=4096, threads_per_block=512, cost_model=MODEL
    )
    return build, probe, result


def test_unique_keys_join():
    build, probe, result = _hash_join(range(64), range(64))
    assert result.matches == 64
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_duplicates_produce_cross_products():
    build, probe, result = _hash_join([5, 5, 9], [5, 9, 9, 5])
    assert result.matches == 2 * 2 + 1 * 2
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_disjoint_keys_produce_nothing():
    _, _, result = _hash_join([1, 2, 3], [100, 200])
    assert result.matches == 0


def test_empty_probe():
    _, _, result = _hash_join([1, 2, 3], [])
    assert result.matches == 0


@settings(max_examples=50, deadline=None)
@given(
    build_keys=st.lists(st.integers(min_value=0, max_value=255), max_size=150),
    probe_keys=st.lists(st.integers(min_value=0, max_value=255), max_size=150),
)
def test_matches_oracle_under_arbitrary_duplication(build_keys, probe_keys):
    build, probe, result = _hash_join(build_keys, probe_keys, bits=(2, 1))
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_chain_visits_at_least_matches():
    _, _, result = _hash_join([7] * 10, [7] * 3, nslots=16)
    assert result.chain_visits >= result.matches == 30


def test_mismatched_partitioning_rejected():
    build = Relation.from_keys(np.arange(16))
    probe = Relation.from_keys(np.arange(16))
    pb, _ = gpu_radix_partition(build, [2], MODEL)
    pp, _ = gpu_radix_partition(probe, [3], MODEL)
    tables, _ = build_copartition_tables(
        pb, nslots=16, elements_per_block=4096, cost_model=MODEL
    )
    with pytest.raises(InvalidConfigError):
        probe_copartitions(
            tables, pp, elements_per_block=4096, threads_per_block=512,
            cost_model=MODEL,
        )


def test_nslots_must_be_power_of_two():
    build = Relation.from_keys(np.arange(8))
    pb, _ = gpu_radix_partition(build, [1], MODEL)
    with pytest.raises(InvalidConfigError):
        build_copartition_tables(pb, nslots=3, elements_per_block=64, cost_model=MODEL)


def test_strict_16bit_offsets_enforced():
    build = Relation.from_keys(np.zeros(70_000, dtype=np.int64))
    pb, _ = gpu_radix_partition(build, [1], MODEL)
    with pytest.raises(SharedMemoryOverflowError):
        build_copartition_tables(
            pb, nslots=16, elements_per_block=4096, cost_model=MODEL,
            strict_offsets=True,
        )
    # Non-strict mode flags the partition for fallback instead.
    tables, _ = build_copartition_tables(
        pb, nslots=16, elements_per_block=4096, cost_model=MODEL
    )
    assert 0 in tables.fallback_partitions


def test_fallback_partitions_flagged():
    build = Relation.from_keys(np.zeros(100, dtype=np.int64))
    pb, _ = gpu_radix_partition(build, [1], MODEL)
    tables, _ = build_copartition_tables(
        pb, nslots=16, elements_per_block=64, cost_model=MODEL
    )
    assert list(tables.fallback_partitions) == [0]


def test_probe_cost_reports_stats():
    _, _, result = _hash_join(range(128), range(128))
    assert result.stats.total_build == 128
    assert result.stats.total_probe == 128
    assert result.stats.total_matches == pytest.approx(128)
    assert result.cost.seconds > 0
