"""Hash and bit-width helpers."""

import numpy as np
import pytest

from repro.errors import InvalidConfigError
from repro.kernels.aggregate import JoinAggregate, aggregate_pairs
from repro.kernels.common import (
    ht_slot,
    is_power_of_two,
    key_bit_width,
    next_power_of_two,
)


def test_is_power_of_two():
    assert is_power_of_two(1) and is_power_of_two(1024)
    assert not is_power_of_two(0) and not is_power_of_two(3)


def test_next_power_of_two():
    assert next_power_of_two(0) == 1
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert next_power_of_two(1024) == 1024


def test_key_bit_width():
    assert key_bit_width(0) == 1
    assert key_bit_width(255) == 8
    assert key_bit_width(256) == 9
    with pytest.raises(InvalidConfigError):
        key_bit_width(-1)


def test_ht_slot_range_and_determinism():
    keys = np.arange(10_000)
    slots = ht_slot(keys, 256)
    assert slots.min() >= 0 and slots.max() < 256
    assert np.array_equal(slots, ht_slot(keys, 256))


def test_ht_slot_mixes_above_radix_bits():
    """Keys identical below ``radix_bits`` must still spread over slots."""
    keys = (np.arange(4096) << 8) | 0x5A  # same low byte everywhere
    slots = ht_slot(keys, 64, radix_bits=8)
    counts = np.bincount(slots, minlength=64)
    assert counts.max() < 4 * counts.mean()


def test_ht_slot_requires_power_of_two():
    with pytest.raises(InvalidConfigError):
        ht_slot(np.arange(4), 6)


def test_aggregate_pairs_and_addition():
    agg = aggregate_pairs(np.array([1, 2, 3]), np.array([10, 20, 30]))
    assert agg.matches == 3
    assert agg.build_payload_sum == 6
    assert agg.probe_payload_sum == 60
    total = agg + JoinAggregate(matches=1, build_payload_sum=4, probe_payload_sum=5)
    assert (total.matches, total.build_payload_sum, total.probe_payload_sum) == (4, 10, 65)
    empty = aggregate_pairs(np.array([]), np.array([]))
    assert empty == JoinAggregate.zero()
