"""Histogram-based partitioning vs the paper's atomic bucket pools."""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.cost import GpuCostModel
from repro.kernels.histogram import (
    exclusive_prefix_sum,
    histogram_pass,
    histogram_radix_partition,
    partitioning_approach_costs,
)
from repro.kernels.radix_partition import gpu_radix_partition

MODEL = GpuCostModel()


def test_histogram_pass_counts():
    keys = np.array([0, 1, 1, 3, 3, 3])
    assert list(histogram_pass(keys, 2)) == [1, 2, 0, 3]
    with pytest.raises(InvalidConfigError):
        histogram_pass(keys, 0)


def test_exclusive_prefix_sum():
    assert list(exclusive_prefix_sum(np.array([1, 2, 0, 3]))) == [0, 1, 3, 3]


def test_histogram_variant_produces_identical_layout():
    rel = Relation.from_keys(np.random.default_rng(0).integers(0, 1 << 12, 4000))
    via_hist, _ = histogram_radix_partition(rel, [3, 2], MODEL)
    via_atomic, _ = gpu_radix_partition(rel, [3, 2], MODEL)
    assert np.array_equal(via_hist.keys, via_atomic.keys)
    assert np.array_equal(via_hist.offsets, via_atomic.offsets)


def test_histogram_variant_costs_an_extra_read_per_pass():
    """SVI: the paper 'avoids an extra pass on each partitioning step by
    using GPU atomic operations instead of building histograms'."""
    rel = Relation.from_keys(np.random.default_rng(1).permutation(1 << 14))
    _, hist_cost = histogram_radix_partition(rel, [4, 4], MODEL)
    _, atomic_cost = gpu_radix_partition(rel, [4, 4], MODEL)
    assert hist_cost.seconds > atomic_cost.seconds
    extra = hist_cost.seconds - atomic_cost.seconds
    one_read = MODEL.scan_seconds(rel.num_tuples * rel.tuple_bytes)
    assert extra >= 2 * one_read  # one extra input read per pass


def test_analytic_costs_agree_with_functional():
    n = 1 << 14
    costs = partitioning_approach_costs(n, 8, [4, 4], MODEL)
    rel = Relation.from_keys(np.random.default_rng(2).permutation(n))
    _, hist_cost = histogram_radix_partition(rel, [4, 4], MODEL)
    assert costs["histogram"] == pytest.approx(hist_cost.seconds, rel=0.1)
    assert costs["atomic_buckets"] < costs["histogram"]
