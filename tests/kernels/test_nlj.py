"""Ballot-based nested-loop join (Listing 1 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import naive_join_pairs
from repro.data.relation import Relation
from repro.gpusim.cost import GpuCostModel
from repro.gpusim.warp import WARP_SIZE
from repro.kernels.common import key_bit_width
from repro.kernels.probe_nlj import _PAD, ballot_match_masks, nlj_copartitions
from repro.kernels.radix_partition import gpu_radix_partition

MODEL = GpuCostModel()


def _pad_chunk(values):
    chunk = np.full(WARP_SIZE, _PAD, dtype=np.int64)
    chunk[: len(values)] = values
    return chunk


def test_ballot_masks_match_equality():
    build = _pad_chunk([0b0100, 0b1000, 0b1100])
    probe = np.array([0b0100, 0b1100, 0b0000], dtype=np.int64)
    masks = ballot_match_masks(build, probe, differing_bits=[2, 3])
    assert masks[0] == 0b001  # matches lane 0 only
    assert masks[1] == 0b100
    assert masks[2] == 0


def test_ballot_ignores_padding_lanes():
    build = _pad_chunk([1])
    # A probe key equal to the pad pattern on the differing bits must not
    # match the padded lanes.
    probe = np.array([-1 & 0xF], dtype=np.int64)
    masks = ballot_match_masks(build, probe, differing_bits=[0, 1, 2, 3])
    assert masks[0] == 0


@settings(max_examples=50, deadline=None)
@given(
    build=st.lists(st.integers(min_value=0, max_value=63), min_size=0, max_size=32),
    probe=st.lists(st.integers(min_value=0, max_value=63), min_size=0, max_size=40),
)
def test_ballot_masks_equal_bruteforce_equality(build, probe):
    chunk = _pad_chunk(build)
    probe_arr = np.asarray(probe, dtype=np.int64)
    masks = ballot_match_masks(chunk, probe_arr, differing_bits=list(range(6)))
    for row, s in enumerate(probe):
        expected = 0
        for lane, r in enumerate(build):
            if r == s:
                expected |= 1 << lane
        assert int(masks[row]) == expected


def _nlj(build_keys, probe_keys, bits=(2,)):
    build = Relation.from_keys(np.asarray(build_keys, dtype=np.int64))
    probe = Relation.from_keys(np.asarray(probe_keys, dtype=np.int64))
    pb, _ = gpu_radix_partition(build, list(bits), MODEL)
    pp, _ = gpu_radix_partition(probe, list(bits), MODEL)
    key_bits = key_bit_width(
        int(max(build.key.max(initial=0), probe.key.max(initial=0)))
    )
    return build, probe, nlj_copartitions(
        pb, pp, key_bits=key_bits, threads_per_block=512, cost_model=MODEL
    )


def test_nlj_unique_keys():
    build, probe, result = _nlj(range(100), range(100))
    assert result.matches == 100
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_nlj_with_duplicates():
    build, probe, result = _nlj([3, 3, 7, 11], [3, 7, 7, 11, 11, 11])
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_nlj_build_larger_than_one_warp():
    """Partitions wider than 32 elements require several ballot rounds."""
    build, probe, result = _nlj(list(range(0, 512, 4)), list(range(0, 512, 4)))
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


@settings(max_examples=30, deadline=None)
@given(
    build=st.lists(st.integers(min_value=0, max_value=127), max_size=120),
    probe=st.lists(st.integers(min_value=0, max_value=127), max_size=120),
)
def test_nlj_matches_oracle(build, probe):
    b, p, result = _nlj(build, probe)
    assert np.array_equal(result.pairs(), naive_join_pairs(b, p))


def test_nlj_and_hash_probe_agree():
    from repro.kernels.build_hash import build_copartition_tables
    from repro.kernels.probe_hash import probe_copartitions

    rng = np.random.default_rng(5)
    build = Relation.from_keys(rng.integers(0, 512, size=400))
    probe = Relation.from_keys(rng.integers(0, 512, size=600))
    pb, _ = gpu_radix_partition(build, [3], MODEL)
    pp, _ = gpu_radix_partition(probe, [3], MODEL)
    nlj = nlj_copartitions(
        pb, pp, key_bits=10, threads_per_block=512, cost_model=MODEL
    )
    tables, _ = build_copartition_tables(
        pb, nslots=64, elements_per_block=4096, cost_model=MODEL
    )
    hashed = probe_copartitions(
        tables, pp, elements_per_block=4096, threads_per_block=512, cost_model=MODEL
    )
    assert np.array_equal(nlj.pairs(), hashed.pairs())
