"""Non-partitioned GPU joins: chaining and perfect hash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import naive_join_pairs
from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.cost import GpuCostModel
from repro.kernels.nonpartitioned import chaining_join, perfect_hash_join

MODEL = GpuCostModel()


def _rel(keys) -> Relation:
    return Relation.from_keys(np.asarray(keys, dtype=np.int64))


def test_chaining_join_unique():
    build, probe = _rel(range(256)), _rel(range(256))
    result = chaining_join(build, probe, MODEL)
    assert result.matches == 256
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_chaining_join_duplicates():
    build, probe = _rel([1, 1, 2]), _rel([1, 2, 2, 1])
    result = chaining_join(build, probe, MODEL)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


@settings(max_examples=40, deadline=None)
@given(
    build=st.lists(st.integers(min_value=0, max_value=100), max_size=120),
    probe=st.lists(st.integers(min_value=0, max_value=100), max_size=120),
)
def test_chaining_matches_oracle(build, probe):
    b, p = _rel(build), _rel(probe)
    result = chaining_join(b, p, MODEL)
    assert np.array_equal(result.pairs(), naive_join_pairs(b, p))


def test_perfect_hash_join():
    rng = np.random.default_rng(0)
    build = _rel(rng.permutation(512))
    probe = _rel(rng.integers(0, 512, size=700))
    result = perfect_hash_join(build, probe, MODEL)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_perfect_hash_requires_dense_keys():
    with pytest.raises(InvalidConfigError):
        perfect_hash_join(_rel([0, 2, 5]), _rel([0]), MODEL)


def test_perfect_hash_requires_unique_keys():
    with pytest.raises(InvalidConfigError):
        perfect_hash_join(_rel([0, 0, 1]), _rel([0]), MODEL)


def test_perfect_hash_out_of_range_probes_are_no_matches():
    build = _rel(range(8))
    probe = _rel([3, 99, -5])
    result = perfect_hash_join(build, probe, MODEL)
    assert result.matches == 1


def test_costs_reported():
    build, probe = _rel(range(64)), _rel(range(64))
    chain = chaining_join(build, probe, MODEL)
    perfect = perfect_hash_join(build, probe, MODEL)
    assert chain.cost.seconds > 0 and perfect.cost.seconds > 0
    assert chain.build_cost.seconds > 0 and chain.probe_cost.seconds > 0


def test_slots_per_tuple_controls_table_size():
    build, probe = _rel(range(100)), _rel(range(100))
    dense = chaining_join(build, probe, MODEL, slots_per_tuple=0.25)
    sparse = chaining_join(build, probe, MODEL, slots_per_tuple=4.0)
    assert np.array_equal(dense.pairs(), sparse.pairs())
