"""Warp output buffering invariants (§III-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidConfigError
from repro.kernels.output_buffer import WarpOutputBuffer, expected_flushes


def test_no_loss_no_duplication():
    buffer = WarpOutputBuffer(capacity=4)
    buffer.emit([1, 2, 3])
    buffer.emit([4, 5])
    buffer.emit([6])
    out = buffer.finish()
    assert sorted(out) == [1, 2, 3, 4, 5, 6]


def test_flush_happens_when_full():
    buffer = WarpOutputBuffer(capacity=3)
    buffer.emit([1, 2, 3])  # fills exactly; no flush yet
    assert buffer.flush_count == 0
    buffer.emit([4])  # overflow forces a flush of [1, 2, 3]
    assert buffer.flush_count == 1
    assert buffer.flushes[0].count == 3


def test_flush_segments_are_contiguous():
    buffer = WarpOutputBuffer(capacity=2)
    for step in range(5):
        buffer.emit([step * 10, step * 10 + 1])
    buffer.finish()
    cursor = 0
    for record in buffer.flushes:
        assert record.base == cursor
        cursor += record.count


def test_values_within_a_flush_preserve_lane_order():
    buffer = WarpOutputBuffer(capacity=8)
    buffer.emit([7, 8, 9])
    out = buffer.finish()
    assert list(out) == [7, 8, 9]


def test_finish_flushes_outstanding():
    buffer = WarpOutputBuffer(capacity=100)
    buffer.emit([1])
    out = buffer.finish()
    assert list(out) == [1]
    assert buffer.flush_count == 1


def test_empty_buffer_finish():
    buffer = WarpOutputBuffer(capacity=4)
    assert buffer.finish().shape == (0,)
    assert buffer.flush_count == 0


def test_invalid_capacity():
    with pytest.raises(InvalidConfigError):
        WarpOutputBuffer(capacity=0)
    with pytest.raises(InvalidConfigError):
        expected_flushes(10, 0)


def test_expected_flushes():
    assert expected_flushes(0, 8) == 0
    assert expected_flushes(8, 8) == 1
    assert expected_flushes(9, 8) == 2


@settings(max_examples=50, deadline=None)
@given(
    emissions=st.lists(
        st.lists(
            st.integers(min_value=-(2**62), max_value=2**62), max_size=8
        ),
        max_size=40,
    ),
    capacity=st.integers(min_value=1, max_value=16),
)
def test_buffering_is_lossless_for_any_pattern(emissions, capacity):
    buffer = WarpOutputBuffer(capacity=capacity)
    expected: list[int] = []
    for lane_values in emissions:
        buffer.emit(lane_values)
        expected.extend(lane_values)
    out = buffer.finish()
    assert list(out) == expected  # order preserved end-to-end
    assert buffer.flush_count <= expected_flushes(len(expected), capacity) + 1
