"""Radix partitioning invariants (functional kernel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.cost import GpuCostModel
from repro.kernels.radix_partition import (
    BUCKET_AT_A_TIME,
    PARTITION_AT_A_TIME,
    bucket_skew_imbalance,
    derive_bits_per_pass,
    estimate_partition_cost,
    gpu_radix_partition,
    partition_pass_arrays,
)

MODEL = GpuCostModel()


def _relation(keys) -> Relation:
    return Relation.from_keys(np.asarray(keys, dtype=np.int64))


def test_partition_groups_by_low_bits():
    rel = _relation([0, 1, 2, 3, 4, 5, 6, 7])
    part, _ = gpu_radix_partition(rel, [2], MODEL)
    for p in range(4):
        keys, _ = part.partition(p)
        assert np.all((keys & 3) == p)


def test_partition_is_stable_permutation():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1 << 20, size=5000)
    rel = Relation.from_keys(keys)
    part, _ = gpu_radix_partition(rel, [4, 3], MODEL)
    # Permutation: same multiset of (key, payload) pairs.
    assert sorted(zip(part.keys, part.payloads)) == sorted(zip(rel.key, rel.payload))
    # Stability: payloads (original row ids) ascend within each partition.
    for p in range(part.fanout):
        _, payloads = part.partition(p)
        assert np.all(np.diff(payloads) > 0)


def test_offsets_consistent_with_sizes():
    rel = _relation(np.arange(1000))
    part, _ = gpu_radix_partition(rel, [3], MODEL)
    assert part.offsets[0] == 0 and part.offsets[-1] == 1000
    assert np.all(np.diff(part.offsets) == part.partition_sizes())


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300),
    bits=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
)
def test_multipass_equals_sequence_of_single_passes(keys, bits):
    """The fused implementation must be bit-exact with running the passes
    one after another (hierarchical stable refinement)."""
    rel = _relation(keys)
    part, _ = gpu_radix_partition(rel, bits, MODEL)

    # LSD radix: each pass stably partitions the whole array on the next
    # digit group; after all passes tuples are grouped by the combined
    # low bits in ascending partition order.
    cur_keys, cur_payloads = rel.key, rel.payload
    shift = 0
    for b in bits:
        cur_keys, cur_payloads, _ = partition_pass_arrays(cur_keys, cur_payloads, b, shift)
        shift += b
    assert np.array_equal(part.keys, cur_keys)
    assert np.array_equal(part.payloads, cur_payloads)


def test_partition_at_a_time_pays_for_skew():
    skewed = _relation([0] * 1000 + list(range(1, 50)))
    _, balanced_cost = gpu_radix_partition(
        skewed, [4, 2], MODEL, assignment=BUCKET_AT_A_TIME, bucket_capacity=16
    )
    _, imbalanced_cost = gpu_radix_partition(
        skewed, [4, 2], MODEL, assignment=PARTITION_AT_A_TIME, bucket_capacity=16
    )
    assert imbalanced_cost.seconds > balanced_cost.seconds


def test_unknown_assignment_rejected():
    with pytest.raises(InvalidConfigError):
        gpu_radix_partition(_relation([1]), [2], MODEL, assignment="warp")


def test_empty_pass_list_rejected():
    with pytest.raises(InvalidConfigError):
        gpu_radix_partition(_relation([1]), [], MODEL)


def test_bucket_accounting():
    rel = _relation(np.arange(100))
    part, _ = gpu_radix_partition(rel, [2], MODEL, bucket_capacity=8)
    assert list(part.partition_sizes()) == [25, 25, 25, 25]
    assert list(part.buckets_per_partition()) == [4, 4, 4, 4]
    assert part.total_buckets() == 16
    assert list(part.padded_sizes()) == [32, 32, 32, 32]
    assert np.all(part.padded_bytes() == 32 * rel.tuple_bytes)


def test_chain_imbalance_of_skewed_partitions():
    rel = _relation([0] * 900 + [1] * 50 + [2] * 25 + [3] * 25)
    part, _ = gpu_radix_partition(rel, [2], MODEL, bucket_capacity=16)
    assert part.chain_imbalance() > 2.0


def test_bucket_skew_imbalance():
    assert bucket_skew_imbalance(np.full(16, 100.0)) == pytest.approx(1.0)
    hot = np.full(16, 100.0)
    hot[0] = 10_000.0
    assert bucket_skew_imbalance(hot) > 1.3


def test_derive_bits_per_pass():
    assert derive_bits_per_pass(15) == [8, 7]
    assert derive_bits_per_pass(8) == [8]
    assert derive_bits_per_pass(20, max_bits_per_pass=6) == [6, 6, 6, 2]
    with pytest.raises(InvalidConfigError):
        derive_bits_per_pass(0)


def test_estimate_matches_functional_cost_for_uniform_data():
    rel = Relation.from_keys(np.random.default_rng(1).permutation(1 << 14))
    _, functional = gpu_radix_partition(rel, [4, 3], MODEL)
    analytic = estimate_partition_cost(rel.num_tuples, rel.tuple_bytes, [4, 3], MODEL)
    assert functional.seconds == pytest.approx(analytic.seconds, rel=0.05)
