"""Task release times (``available_at``) in the pipeline engine."""

import pytest

from repro.errors import SchedulingError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Task


def test_task_waits_for_release_time():
    engine = PipelineEngine()
    engine.add(Task("a", "gpu", 1.0))
    engine.add(Task("b", "gpu", 1.0, available_at=5.0))
    schedule = engine.run()
    assert schedule.tasks["a"].start == 0.0
    assert schedule.tasks["b"].start == 5.0
    assert schedule.makespan == 6.0


def test_release_time_combines_with_dependencies():
    engine = PipelineEngine()
    engine.add(Task("a", "h2d", 2.0))
    # Dep finishes at 2.0 but the task is only released at 3.0.
    engine.add(Task("b", "gpu", 1.0, deps=("a",), available_at=3.0))
    # Dep finishes at 2.0 and release (1.0) is already past.
    engine.add(Task("c", "gpu", 1.0, deps=("a",), available_at=1.0))
    schedule = engine.run()
    assert schedule.tasks["b"].start == 3.0
    assert schedule.tasks["c"].start == 4.0  # FIFO behind b on the queue


def test_default_release_time_preserves_existing_behavior():
    engine = PipelineEngine()
    engine.add(Task("a", "gpu", 1.5))
    engine.add(Task("b", "gpu", 0.5))
    schedule = engine.run()
    assert schedule.makespan == 2.0
    assert schedule.tasks["b"].start == 1.5


def test_negative_release_time_rejected():
    engine = PipelineEngine()
    with pytest.raises(SchedulingError):
        engine.add(Task("a", "gpu", 1.0, available_at=-1.0))
