"""Schedule compaction is pure bookkeeping: retiring finished tasks
must never change what the engine schedules next.

``PipelineEngine.compact(schedule, horizon)`` drops tasks whose
finishes precede the live frontier from both the schedule and the
engine's books.  Because extension reads only the carried-over lane
heaps (``lane_state``) and the finishes of tasks new work depends on,
every ``extend`` after a compaction must be **bit-identical** (exact
``==``) to the same extension on an uncompacted twin engine — replayed
here over randomized multi-wave arrival sequences, with the uncompacted
twin as the oracle.
"""

import random

import pytest

from repro.errors import SchedulingError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task


def chain_wave(
    wave: int, rng: random.Random, pools: list[str], clock: float
) -> list[Task]:
    """One admission wave of independent per-query chains — tasks only
    depend on tasks of the same wave, mirroring the serving layer's
    per-query namespacing (the contract that makes any finished task
    safe to retire)."""
    tasks: list[Task] = []
    for q in range(rng.randint(1, 3)):
        prev: str | None = None
        for i in range(rng.randint(1, 5)):
            name = f"w{wave}q{q}t{i}"
            tasks.append(
                Task(
                    name=name,
                    resource=rng.choice(pools),
                    duration=rng.random() * rng.choice([0.5, 2.0]),
                    deps=(prev,) if prev else (),
                    available_at=clock,
                )
            )
            prev = name
    return tasks


def clone(task: Task) -> Task:
    return Task(
        name=task.name,
        resource=task.resource,
        duration=task.duration,
        deps=task.deps,
        phase=task.phase,
        available_at=task.available_at,
        device=task.device,
    )


def simple_engine() -> tuple[PipelineEngine, Schedule]:
    engine = PipelineEngine({"gpu": 1, "h2d": 1})
    engine.add(Task("a", "h2d", 1.0))
    engine.add(Task("b", "gpu", 2.0, ("a",)))
    engine.add(Task("c", "gpu", 3.0, ("b",)))
    return engine, engine.run()


# ---------------------------------------------------------------------------
# Schedule.compact semantics
# ---------------------------------------------------------------------------
def test_compact_retires_only_finished_and_preserves_makespan():
    engine, schedule = simple_engine()
    makespan = schedule.makespan
    assert makespan == 6.0
    retired = engine.compact(schedule, 3.0)  # a (1.0) and b (3.0)
    assert retired == 2
    assert set(schedule.tasks) == {"c"}
    assert schedule.retired_tasks == 2
    assert schedule.retired_makespan == 3.0
    assert schedule.makespan == makespan  # history survives compaction


def test_compact_past_everything_keeps_whole_run_makespan():
    engine, schedule = simple_engine()
    assert engine.compact(schedule, 100.0) == 3
    assert schedule.tasks == {}
    assert schedule.makespan == 6.0


def test_compact_before_any_finish_is_a_noop():
    engine, schedule = simple_engine()
    assert engine.compact(schedule, 0.5) == 0
    assert len(schedule.tasks) == 3
    # Nothing retired: the full graph still exists, run() stays legal.
    assert engine.run().makespan == 6.0


def test_lane_state_untouched_by_compaction():
    engine, schedule = simple_engine()
    before = {name: list(heap) for name, heap in schedule.lane_state.items()}
    engine.compact(schedule, 3.0)
    after = {name: list(heap) for name, heap in schedule.lane_state.items()}
    assert after == before


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------
def test_run_and_reference_refuse_after_compact():
    engine, schedule = simple_engine()
    engine.compact(schedule, 3.0)
    with pytest.raises(SchedulingError, match="after compact"):
        engine.run()
    with pytest.raises(SchedulingError, match="after compact"):
        engine.run_reference()


def test_compact_refuses_merged_view():
    engine, schedule = simple_engine()
    merged = Schedule.merged([schedule])
    with pytest.raises(SchedulingError, match="merged"):
        engine.compact(merged, 3.0)


def test_compact_refuses_stale_schedule():
    engine, schedule = simple_engine()
    schedule.compact(3.0)  # behind the engine's back
    with pytest.raises(SchedulingError, match="stale"):
        engine.compact(schedule, 4.0)
    with pytest.raises(SchedulingError, match="stale"):
        engine.extend(schedule, [Task("d", "gpu", 1.0)])


def test_dep_on_retired_task_mentions_compaction():
    engine, schedule = simple_engine()
    engine.compact(schedule, 3.0)
    with pytest.raises(SchedulingError, match="retired by compact"):
        engine.extend(schedule, [Task("d", "gpu", 1.0, ("a",))])
    # The rejected batch rolled back: a clean extension still works.
    extended = engine.extend(schedule, [Task("d", "gpu", 1.0, ("c",))])
    assert extended.tasks["d"].start == 6.0


# ---------------------------------------------------------------------------
# Differential: compacted extends == uncompacted extends, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(40))
def test_compacted_extension_bit_identical(seed):
    rng = random.Random(seed)
    resources = {f"r{i}": rng.randint(1, 2) for i in range(rng.randint(1, 3))}
    pools = list(resources)

    compacted_engine = PipelineEngine(dict(resources))
    oracle_engine = PipelineEngine(dict(resources))
    compacted = Schedule(lanes=dict(resources))
    oracle = Schedule(lanes=dict(resources))
    clock = 0.0
    total_retired = 0
    for wave in range(rng.randint(3, 6)):
        clock += rng.random() * 2
        tasks = chain_wave(wave, rng, pools, clock)
        compacted = compacted_engine.extend(
            compacted, tasks, in_place=True
        )
        oracle = oracle_engine.extend(
            oracle, [clone(task) for task in tasks], in_place=True
        )
        # Every retained task agrees exactly with the oracle.
        for name, item in compacted.tasks.items():
            twin = oracle.tasks[name]
            assert (item.start, item.finish, item.lane) == (
                twin.start, twin.finish, twin.lane
            ), name
        assert compacted.lane_state == oracle.lane_state
        assert compacted.makespan == oracle.makespan
        # Retire everything finished by a random horizon <= the clock
        # frontier; per-wave chains mean nothing future depends on it.
        total_retired += compacted_engine.compact(
            compacted, rng.random() * clock
        )
    assert compacted.makespan == oracle.makespan
    assert compacted.retired_tasks == total_retired
    assert len(compacted.tasks) == len(oracle.tasks) - total_retired
