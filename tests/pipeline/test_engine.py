"""Discrete-event pipeline engine semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.pipeline.engine import PipelineEngine, double_buffered_stream
from repro.pipeline.tasks import Task


def test_single_resource_runs_fifo():
    engine = PipelineEngine()
    engine.add_task("a", "gpu", 1.0)
    engine.add_task("b", "gpu", 2.0)
    schedule = engine.run()
    assert schedule.tasks["a"].start == 0.0
    assert schedule.tasks["b"].start == 1.0
    assert schedule.makespan == 3.0


def test_independent_resources_overlap():
    engine = PipelineEngine()
    engine.add_task("copy", "h2d", 5.0)
    engine.add_task("compute", "gpu", 5.0)
    assert engine.run().makespan == 5.0


def test_dependency_delays_start():
    engine = PipelineEngine()
    engine.add_task("copy", "h2d", 5.0)
    engine.add_task("compute", "gpu", 1.0, ["copy"])
    schedule = engine.run()
    assert schedule.tasks["compute"].start == 5.0
    assert schedule.makespan == 6.0


def test_makespan_bounds():
    """max(resource busy) <= makespan <= sum of durations."""
    engine = PipelineEngine()
    durations = [1.0, 2.0, 0.5, 3.0]
    prev = None
    for i, duration in enumerate(durations):
        deps = [prev] if prev and i % 2 else []
        prev = f"t{i}"
        engine.add_task(prev, "gpu" if i % 2 else "h2d", duration, deps)
    schedule = engine.run()
    busiest = max(schedule.busy_time("gpu"), schedule.busy_time("h2d"))
    assert busiest <= schedule.makespan <= sum(durations) + 1e-12


def test_duplicate_task_name_rejected():
    engine = PipelineEngine()
    engine.add_task("a", "gpu", 1.0)
    with pytest.raises(SchedulingError):
        engine.add_task("a", "gpu", 1.0)


def test_negative_duration_rejected():
    engine = PipelineEngine()
    with pytest.raises(SchedulingError):
        engine.add_task("a", "gpu", -1.0)


def test_unknown_dependency_rejected():
    engine = PipelineEngine()
    engine.add_task("a", "gpu", 1.0, ["ghost"])
    with pytest.raises(SchedulingError):
        engine.run()


def test_cross_queue_deadlock_detected():
    engine = PipelineEngine()
    # Head of each queue depends on the other queue's head successor:
    # a(h2d) <- b(gpu) and b's queue head c depends on a's successor d.
    engine.add_task("a", "h2d", 1.0, ["c"])
    engine.add_task("c", "gpu", 1.0, ["a"])
    with pytest.raises(SchedulingError):
        engine.run()


def test_utilization_and_critical_resource():
    engine = PipelineEngine()
    engine.add_task("x", "h2d", 4.0)
    engine.add_task("y", "gpu", 1.0, ["x"])
    schedule = engine.run()
    assert schedule.utilization("h2d") == pytest.approx(4.0 / 5.0)
    assert schedule.critical_resource() == "h2d"


def test_empty_schedule():
    schedule = PipelineEngine().run()
    assert schedule.makespan == 0.0
    assert schedule.critical_resource() is None


def test_double_buffered_stream_hides_compute():
    """Transfer-bound pipeline: makespan ~= all transfers + last compute
    (§IV-A's headline property)."""
    engine = PipelineEngine()
    chunks, transfer, compute = 10, 1.0, 0.2
    double_buffered_stream(
        engine, prefix="s", chunks=chunks,
        transfer_seconds=transfer, compute_seconds=compute,
    )
    makespan = engine.run().makespan
    assert makespan == pytest.approx(chunks * transfer + compute)


def test_double_buffered_stream_compute_bound():
    """Compute-bound pipeline: makespan ~= first transfer + all computes."""
    engine = PipelineEngine()
    chunks, transfer, compute = 10, 0.2, 1.0
    double_buffered_stream(
        engine, prefix="s", chunks=chunks,
        transfer_seconds=transfer, compute_seconds=compute,
    )
    makespan = engine.run().makespan
    assert makespan == pytest.approx(transfer + chunks * compute)


def test_double_buffered_stream_with_output():
    engine = PipelineEngine()
    double_buffered_stream(
        engine, prefix="s", chunks=6,
        transfer_seconds=1.0, compute_seconds=0.3, output_seconds=0.4,
    )
    schedule = engine.run()
    # Output copies overlap input transfers on the second DMA engine:
    # only the last chunk's compute+copy extend past the transfers.
    assert schedule.makespan == pytest.approx(6 * 1.0 + 0.3 + 0.4)


def test_double_buffered_stream_callable_durations():
    engine = PipelineEngine()
    double_buffered_stream(
        engine, prefix="s", chunks=3,
        transfer_seconds=lambda i: 1.0 + i, compute_seconds=0.1,
    )
    assert engine.run().makespan == pytest.approx(1.0 + 2.0 + 3.0 + 0.1)


@settings(max_examples=30, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20
    ),
    buffers=st.integers(min_value=1, max_value=4),
)
def test_stream_makespan_lower_bound(durations, buffers):
    """Makespan can never beat the total transfer time (bus is serial)."""
    engine = PipelineEngine()
    double_buffered_stream(
        engine, prefix="s", chunks=len(durations),
        transfer_seconds=lambda i: durations[i], compute_seconds=0.05,
        buffers=buffers,
    )
    assert engine.run().makespan >= sum(durations) - 1e-9
