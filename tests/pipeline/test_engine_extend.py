"""Incremental schedule extension is pinned to full re-simulation.

``PipelineEngine.extend(schedule, new_tasks)`` places newly submitted
tasks on top of a previous run's carried-over lane heaps and finish
calendar.  Because already-submitted tasks occupy earlier positions of
every FIFO queue and never depend on later submissions, the combined
schedule must be **bit-identical** (exact ``==``, not approx) to a full
``run()`` over the same tasks — the full simulation is retained as the
equivalence oracle, and these tests replay randomized arrival sequences
against it.
"""

import random

import pytest

from repro.errors import SchedulingError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task


def random_arrival_waves(
    seed: int,
) -> tuple[dict[str, int], list[list[Task]]]:
    """Randomized multi-wave arrival sequence over random lane pools.

    Later waves may depend on any earlier task (cross-wave joins), carry
    monotonically increasing release times (the admission clock), and
    include zero-duration tasks.
    """
    rng = random.Random(seed)
    resources = {f"r{i}": rng.randint(1, 3) for i in range(rng.randint(1, 4))}
    pool_names = list(resources)
    waves: list[list[Task]] = []
    earlier: list[str] = []
    clock = 0.0
    for wave_index in range(rng.randint(1, 6)):
        clock += rng.random() * 3
        wave: list[Task] = []
        for i in range(rng.randint(1, 15)):
            candidates = earlier + [task.name for task in wave]
            deps = rng.sample(candidates, min(len(candidates), rng.randint(0, 3)))
            wave.append(
                Task(
                    name=f"w{wave_index}t{i}",
                    resource=rng.choice(pool_names),
                    duration=rng.random() * rng.choice([0.0, 1.0, 10.0]),
                    deps=tuple(deps),
                    available_at=rng.choice([0.0, clock]),
                )
            )
        earlier.extend(task.name for task in wave)
        waves.append(wave)
    return resources, waves


def clone(task: Task) -> Task:
    return Task(
        name=task.name,
        resource=task.resource,
        duration=task.duration,
        deps=task.deps,
        phase=task.phase,
        available_at=task.available_at,
    )


def assert_identical(actual: Schedule, expected: Schedule) -> None:
    assert set(actual.tasks) == set(expected.tasks)
    for name, item in expected.tasks.items():
        placed = actual.tasks[name]
        assert (placed.start, placed.finish, placed.lane) == (
            item.start,
            item.finish,
            item.lane,
        ), name
    assert actual.makespan == expected.makespan


@pytest.mark.parametrize("in_place", [False, True])
@pytest.mark.parametrize("seed", range(120))
def test_randomized_arrival_sequences_match_full_run(seed, in_place):
    resources, waves = random_arrival_waves(seed)

    incremental = PipelineEngine(dict(resources))
    schedule = Schedule()
    for wave in waves:
        schedule = incremental.extend(
            schedule, [clone(t) for t in wave], in_place=in_place
        )

    oracle = PipelineEngine(dict(resources))
    for wave in waves:
        for task in wave:
            oracle.add(clone(task))
    full = oracle.run()

    assert_identical(schedule, full)
    # The extending engine retained every task, so a full re-run of it
    # (the oracle on its own task list) reproduces the same schedule.
    assert_identical(incremental.run(), full)


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_extend_after_run_matches(seed):
    """run() the first wave, then extend() the rest on its schedule."""
    resources, waves = random_arrival_waves(seed)
    engine = PipelineEngine(dict(resources))
    for task in waves[0]:
        engine.add(clone(task))
    schedule = engine.run()
    for wave in waves[1:]:
        schedule = engine.extend(schedule, [clone(t) for t in wave])

    oracle = PipelineEngine(dict(resources))
    for wave in waves:
        for task in wave:
            oracle.add(clone(task))
    assert_identical(schedule, oracle.run())


def test_extend_empty_schedule_equals_run():
    tasks = [
        Task("a", "gpu", 2.0),
        Task("b", "h2d", 1.0),
        Task("c", "gpu", 3.0, deps=("a", "b")),
    ]
    engine = PipelineEngine()
    schedule = engine.extend(Schedule(), [clone(t) for t in tasks])
    oracle = PipelineEngine()
    for task in tasks:
        oracle.add(clone(task))
    assert_identical(schedule, oracle.run())


def test_extension_tasks_respect_available_at():
    engine = PipelineEngine()
    schedule = engine.run()
    schedule = engine.extend(
        schedule, [Task("late", "gpu", 1.0, available_at=5.0)]
    )
    assert schedule.tasks["late"].start == 5.0
    assert schedule.makespan == 6.0


def test_extension_may_introduce_new_resources():
    engine = PipelineEngine({"gpu": 1})
    engine.add(Task("a", "gpu", 1.0))
    schedule = engine.run()
    schedule = engine.extend(schedule, [Task("b", "cpu", 2.0, deps=("a",))])
    assert schedule.tasks["b"].start == 1.0
    assert schedule.lanes["cpu"] == 1


def test_extension_reuses_freed_lanes_like_a_full_run():
    """Multi-lane pools: the carried-over lane heap must hand the next
    task whichever lane frees first, lowest index on ties."""
    engine = PipelineEngine({"pool": 2})
    engine.add(Task("a", "pool", 3.0))
    engine.add(Task("b", "pool", 1.0))
    schedule = engine.run()
    schedule = engine.extend(schedule, [Task("c", "pool", 1.0)])
    # lane 1 (task b) freed at 1.0, before lane 0 (task a) at 3.0.
    assert schedule.tasks["c"].lane == 1
    assert schedule.tasks["c"].start == 1.0


def test_extend_without_recorded_lane_state_reconstructs_it():
    engine = PipelineEngine({"pool": 2})
    engine.add(Task("a", "pool", 3.0))
    engine.add(Task("b", "pool", 1.0))
    schedule = engine.run()
    schedule.lane_state = {}  # e.g. a deserialized schedule
    extended = engine.extend(schedule, [Task("c", "pool", 1.0)])
    assert extended.tasks["c"].lane == 1
    assert extended.tasks["c"].start == 1.0


def test_extend_after_run_reference():
    """The retained scanner also records carry-over lane state."""
    engine = PipelineEngine({"pool": 2})
    engine.add(Task("a", "pool", 3.0))
    engine.add(Task("b", "pool", 1.0))
    schedule = engine.run_reference()
    assert schedule.lane_state["pool"] == [(1.0, 1), (3.0, 0)]
    extended = engine.extend(schedule, [Task("c", "pool", 1.0)])
    assert extended.tasks["c"].lane == 1


def test_stale_schedule_rejected():
    engine = PipelineEngine()
    engine.add(Task("a", "gpu", 1.0))
    with pytest.raises(SchedulingError, match="stale"):
        engine.extend(Schedule(), [Task("b", "gpu", 1.0)])


def test_bad_batches_leave_engine_untouched():
    engine = PipelineEngine()
    engine.add(Task("a", "gpu", 1.0))
    schedule = engine.run()
    for batch, message in [
        ([Task("a", "gpu", 1.0)], "duplicate"),
        ([Task("x", "gpu", 1.0), Task("x", "gpu", 1.0)], "duplicate"),
        ([Task("y", "gpu", -1.0)], "negative duration"),
        ([Task("z", "gpu", 1.0, available_at=-2.0)], "negative available_at"),
        ([Task("w", "gpu", 1.0, deps=("ghost",))], "unknown"),
    ]:
        with pytest.raises(SchedulingError, match=message):
            engine.extend(schedule, batch)
        assert [task.name for task in engine.tasks] == ["a"]
    # The engine is still extendable after every rejected batch.
    extended = engine.extend(schedule, [Task("ok", "gpu", 1.0)])
    assert extended.tasks["ok"].start == 1.0


def test_deadlock_among_new_tasks_detected_and_rolled_back():
    engine = PipelineEngine()
    engine.add(Task("seed", "r1", 1.0))
    schedule = engine.run()
    deadlocked = [
        Task("a", "r1", 1.0, deps=("d",)),
        Task("b", "r1", 1.0),
        Task("c", "r2", 1.0, deps=("b",)),
        Task("d", "r2", 1.0),
    ]
    with pytest.raises(SchedulingError, match="deadlock"):
        engine.extend(schedule, deadlocked, in_place=True)
    # Rolled back: engine and in-place schedule exactly as before,
    # still extendable.
    assert [task.name for task in engine.tasks] == ["seed"]
    assert set(schedule.tasks) == {"seed"}
    assert set(schedule.lanes) == {"r1"}
    extended = engine.extend(schedule, [Task("ok", "r1", 1.0)])
    assert extended.tasks["ok"].start == 1.0


def test_in_place_extension_mutates_and_returns_the_schedule():
    engine = PipelineEngine({"gpu": 1})
    engine.add(Task("a", "gpu", 1.0))
    schedule = engine.run()
    extended = engine.extend(
        schedule, [Task("b", "gpu", 2.0, deps=("a",))], in_place=True
    )
    assert extended is schedule
    assert schedule.tasks["b"].start == 1.0
    assert schedule.lane_state["gpu"] == [(3.0, 0)]

    oracle = PipelineEngine({"gpu": 1})
    oracle.add(Task("a", "gpu", 1.0))
    oracle.add(Task("b", "gpu", 2.0, deps=("a",)))
    assert_identical(schedule, oracle.run())


def test_lane_count_change_rejected():
    narrow = PipelineEngine({"pool": 1})
    narrow.add(Task("a", "pool", 1.0))
    schedule = narrow.run()
    wide = PipelineEngine({"pool": 2})
    wide.add(Task("a", "pool", 1.0))
    with pytest.raises(SchedulingError, match="lane"):
        wide.extend(schedule, [Task("b", "pool", 1.0)])


def test_run_records_lane_state():
    engine = PipelineEngine({"pool": 2, "gpu": 1})
    engine.add(Task("a", "pool", 3.0))
    engine.add(Task("b", "pool", 1.0))
    engine.add(Task("c", "gpu", 2.0, deps=("b",)))
    schedule = engine.run()
    assert schedule.lane_state["pool"] == [(1.0, 1), (3.0, 0)]
    assert schedule.lane_state["gpu"] == [(3.0, 0)]
