"""Schedule identity between the event-driven engine and the scanner.

``PipelineEngine.run`` (indegree counting + lane heaps + event calendar)
must produce exactly the schedule of ``run_reference`` (the original
all-queue-heads scanner, retained as the executable specification):
same start/finish times, same lane assignment, same deadlock detection.
"""

import random

import pytest

from repro.errors import SchedulingError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Task


def random_engine(seed: int) -> PipelineEngine:
    """A randomized DAG over random pools: mixed lane counts, random
    dependencies (only on earlier tasks — acyclic by construction),
    zero-duration tasks, and release times."""
    rng = random.Random(seed)
    resources = [f"r{i}" for i in range(rng.randint(1, 5))]
    engine = PipelineEngine({r: rng.randint(1, 3) for r in resources})
    names: list[str] = []
    for i in range(rng.randint(1, 80)):
        deps = rng.sample(names, min(len(names), rng.randint(0, 3)))
        engine.add(
            Task(
                name=f"t{i}",
                resource=rng.choice(resources),
                duration=rng.random() * rng.choice([0.0, 1.0, 10.0]),
                deps=tuple(deps),
                available_at=rng.choice([0.0, 0.0, rng.random() * 5]),
            )
        )
        names.append(f"t{i}")
    return engine


@pytest.mark.parametrize("seed", range(200))
def test_randomized_dag_schedules_identical(seed):
    heap_schedule = random_engine(seed).run()
    reference = random_engine(seed).run_reference()
    assert set(heap_schedule.tasks) == set(reference.tasks)
    for name, expected in reference.tasks.items():
        actual = heap_schedule.tasks[name]
        assert (actual.start, actual.finish, actual.lane) == (
            expected.start,
            expected.finish,
            expected.lane,
        ), name
    assert heap_schedule.makespan == reference.makespan
    assert heap_schedule.lanes == reference.lanes


def test_cross_queue_deadlock_detected_by_both():
    def build() -> PipelineEngine:
        engine = PipelineEngine()
        # Head of r1 waits on a task stuck behind the head of r2 and
        # vice versa: a cycle across FIFO queues, not in the DAG.
        engine.add(Task("a", "r1", 1.0, deps=("d",)))
        engine.add(Task("b", "r1", 1.0))
        engine.add(Task("c", "r2", 1.0, deps=("b",)))
        engine.add(Task("d", "r2", 1.0))
        return engine

    with pytest.raises(SchedulingError, match="deadlock"):
        build().run()
    with pytest.raises(SchedulingError, match="deadlock"):
        build().run_reference()


def test_unknown_dependency_detected_by_both():
    def build() -> PipelineEngine:
        engine = PipelineEngine()
        engine.add(Task("a", "r", 1.0, deps=("ghost",)))
        return engine

    with pytest.raises(SchedulingError, match="unknown"):
        build().run()
    with pytest.raises(SchedulingError, match="unknown"):
        build().run_reference()


def test_duplicate_dependencies_are_counted_once():
    engine = PipelineEngine()
    engine.add(Task("a", "r", 1.0))
    engine.add(Task("b", "r", 2.0, deps=("a", "a")))
    schedule = engine.run()
    assert schedule.tasks["b"].start == 1.0
    assert schedule.makespan == 3.0


def test_lane_tie_breaks_prefer_lowest_index():
    engine = PipelineEngine({"pool": 3})
    for i in range(3):
        engine.add(Task(f"t{i}", "pool", 1.0))
    schedule = engine.run()
    assert [schedule.tasks[f"t{i}"].lane for i in range(3)] == [0, 1, 2]
