"""Resource pools (multi-lane/stream-count support) and task phases."""

import pytest

from repro.pipeline import PipelineEngine, ResourcePool
from repro.pipeline.tasks import GPU, H2D


def test_single_lane_serializes():
    engine = PipelineEngine()
    engine.add_task("a", GPU, 1.0)
    engine.add_task("b", GPU, 1.0)
    schedule = engine.run()
    assert schedule.makespan == 2.0


def test_two_lanes_overlap_independent_tasks():
    engine = PipelineEngine({GPU: 2})
    engine.add_task("a", GPU, 1.0)
    engine.add_task("b", GPU, 1.0)
    schedule = engine.run()
    assert schedule.makespan == 1.0
    assert {schedule.tasks["a"].lane, schedule.tasks["b"].lane} == {0, 1}


def test_pool_accepts_resource_pool_objects():
    engine = PipelineEngine([ResourcePool(GPU, lanes=3)])
    for i in range(3):
        engine.add_task(f"t{i}", GPU, 2.0)
    assert engine.lanes_of(GPU) == 3
    assert engine.run().makespan == 2.0


def test_lanes_respect_dependencies():
    engine = PipelineEngine({GPU: 2})
    engine.add_task("a", GPU, 1.0)
    engine.add_task("b", GPU, 1.0, ["a"])
    schedule = engine.run()
    assert schedule.tasks["b"].start == 1.0
    assert schedule.makespan == 2.0


def test_three_tasks_two_lanes_queue():
    engine = PipelineEngine({H2D: 2})
    for i in range(3):
        engine.add_task(f"c{i}", H2D, 1.0)
    schedule = engine.run()
    # Third transfer waits for the first lane to free.
    assert schedule.tasks["c2"].start == 1.0
    assert schedule.makespan == 2.0


def test_utilization_accounts_for_lanes():
    engine = PipelineEngine({GPU: 2})
    engine.add_task("a", GPU, 1.0)
    engine.add_task("b", GPU, 1.0)
    schedule = engine.run()
    # Both lanes fully busy over a makespan of 1.0.
    assert schedule.utilization(GPU) == 1.0


def test_invalid_lane_count_rejected():
    with pytest.raises(ValueError):
        ResourcePool(GPU, lanes=0)


def test_phase_defaults_to_resource():
    engine = PipelineEngine()
    engine.add_task("x", GPU, 1.0)
    engine.add_task("y", H2D, 2.0, phase="load")
    schedule = engine.run()
    assert schedule.phase_time(GPU) == 1.0
    assert schedule.phase_time("load") == 2.0
    assert schedule.phase_times() == {GPU: 1.0, "load": 2.0}


def test_phases_aggregate_across_resources():
    engine = PipelineEngine()
    engine.add_task("p1", GPU, 1.0, phase="partition")
    engine.add_task("p2", GPU, 2.0, ["p1"], phase="partition")
    engine.add_task("j", GPU, 3.0, ["p2"], phase="join")
    schedule = engine.run()
    assert schedule.phase_time("partition") == 3.0
    assert schedule.phase_time("join") == 3.0
    assert schedule.makespan == 6.0
