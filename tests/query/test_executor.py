"""Query plans executed with the paper's join strategies."""

import numpy as np
import pytest

from repro.core import GpuJoinConfig
from repro.errors import InvalidConfigError
from repro.query import (
    Aggregate,
    Comparison,
    Filter,
    HashJoin,
    QueryExecutor,
    Scan,
    Table,
)
from repro.query.plan import validate

CFG = GpuJoinConfig(total_radix_bits=5)


def _executor() -> QueryExecutor:
    return QueryExecutor(config=CFG)


def _tables():
    rng = np.random.default_rng(3)
    dim = Table("dim", {"d_key": np.arange(256), "d_attr": np.arange(256) % 7})
    fact = Table(
        "fact",
        {
            "f_fk": rng.integers(0, 256, size=4096),
            "f_val": rng.integers(0, 100, size=4096),
        },
    )
    return dim, fact


def test_single_join_counts_match_oracle():
    dim, fact = _tables()
    plan = HashJoin(Scan(dim), Scan(fact), "d_key", "f_fk")
    result = _executor().execute(plan)
    assert result.table.num_rows == 4096  # every fact row matches once
    # Join output carries both sides' columns, qualified.
    assert "dim.d_attr" in result.table.column_names
    assert "fact.f_val" in result.table.column_names


def test_filter_then_join_then_aggregate():
    dim, fact = _tables()
    plan = Aggregate(
        HashJoin(
            Filter(Scan(dim), "d_attr", Comparison.EQ, 3),
            Scan(fact),
            "d_key",
            "f_fk",
        ),
        sum_columns=("fact.f_val",),
    )
    result = _executor().execute(plan)

    selected = set(dim.column("d_key")[dim.column("d_attr") == 3].tolist())
    mask = np.isin(fact.column("f_fk"), list(selected))
    assert result.aggregates["count"] == int(mask.sum())
    assert result.aggregates["fact.f_val"] == int(fact.column("f_val")[mask].sum())


def test_two_level_join_matches_oracle():
    rng = np.random.default_rng(5)
    a = Table("a", {"a_key": np.arange(64)})
    b = Table("b", {"b_key": np.arange(512), "b_fk": rng.integers(0, 64, 512)})
    c = Table("c", {"c_fk": rng.integers(0, 512, 2048), "c_val": np.ones(2048, dtype=np.int64)})
    plan = Aggregate(
        HashJoin(
            HashJoin(Scan(a), Scan(b), "a_key", "b_fk"),
            Scan(c),
            "b.b_key",
            "c_fk",
        ),
        sum_columns=("c.c_val",),
    )
    result = _executor().execute(plan)
    assert result.aggregates["count"] == 2048  # all FKs resolve
    assert result.aggregates["c.c_val"] == 2048


def test_report_contains_every_operator():
    dim, fact = _tables()
    plan = Aggregate(HashJoin(Scan(dim), Scan(fact), "d_key", "f_fk"))
    result = _executor().execute(plan)
    kinds = [item.operator for item in result.report]
    assert kinds == ["scan", "scan", "hash-join", "aggregate"]
    assert result.seconds > 0
    assert "hash-join" in result.explain()


def test_pinned_strategy_is_used():
    dim, fact = _tables()
    plan = HashJoin(Scan(dim), Scan(fact), "d_key", "f_fk", strategy="streaming")
    result = _executor().execute(plan)
    join_report = [r for r in result.report if r.operator == "hash-join"][0]
    assert "streaming" in join_report.detail


def test_unknown_strategy_rejected():
    dim, fact = _tables()
    plan = HashJoin(Scan(dim), Scan(fact), "d_key", "f_fk", strategy="quantum")
    with pytest.raises(InvalidConfigError):
        _executor().execute(plan)


def test_validate_rejects_unknown_nodes():
    class Rogue:
        pass

    with pytest.raises(InvalidConfigError):
        validate(Rogue())  # type: ignore[arg-type]


def test_comparisons():
    dim, _ = _tables()
    for op, expected in [
        (Comparison.LT, 256 // 7 * 1 + 37),  # d_attr < 1 -> d_attr == 0
    ]:
        plan = Filter(Scan(dim), "d_attr", op, 1)
        out = _executor().execute(plan)
        assert out.table.num_rows == int((dim.column("d_attr") < 1).sum())
    for op in (Comparison.LE, Comparison.GT, Comparison.GE, Comparison.EQ):
        plan = Filter(Scan(dim), "d_attr", op, 3)
        assert _executor().execute(plan).table.num_rows > 0
