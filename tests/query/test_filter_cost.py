"""Width-aware filter costing in the query executor."""

import numpy as np

from repro.gpusim.cost import GpuCostModel
from repro.gpusim.spec import SystemSpec
from repro.query.executor import QueryExecutor
from repro.query.plan import Comparison, Filter, Scan
from repro.query.table import Table

N = 1 << 16


def _filter_seconds(dtype) -> float:
    table = Table("t", {"c": np.zeros(N, dtype=dtype)})
    result = QueryExecutor().execute(
        Filter(Scan(table), "c", Comparison.GE, 0)
    )
    (report,) = [item for item in result.report if item.operator == "filter"]
    assert report.rows_out == N
    return report.seconds


def test_narrow_columns_cost_less_to_scan():
    assert _filter_seconds(np.int8) < _filter_seconds(np.int64)


def test_filter_cost_uses_dtype_itemsize():
    model = GpuCostModel(SystemSpec())
    for dtype, width in [(np.int8, 1), (np.int16, 2), (np.int32, 4), (np.int64, 8)]:
        assert _filter_seconds(dtype) == model.scan_seconds(N * width)


def test_tables_preserve_integer_widths():
    table = Table("t", {"narrow": np.ones(8, np.int16), "wide": np.ones(8, np.int64)})
    assert table.column("narrow").dtype == np.int16
    # Non-array input (e.g. a python list) still coerces to int64.
    listy = Table("u", {"c": np.asarray([1, 2, 3], dtype=np.float64)})
    assert listy.column("c").dtype == np.int64
