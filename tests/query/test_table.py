"""Columnar table abstraction."""

import numpy as np
import pytest

from repro.errors import InvalidRelationError
from repro.query.table import Table


def _table() -> Table:
    return Table("t", {"k": np.array([3, 1, 2]), "v": np.array([30, 10, 20])})


def test_columns_and_rows():
    table = _table()
    assert table.num_rows == 3
    assert table.column_names == ["k", "v"]
    assert list(table.column("v")) == [30, 10, 20]


def test_ragged_columns_rejected():
    with pytest.raises(InvalidRelationError):
        Table("t", {"a": np.arange(2), "b": np.arange(3)})


def test_unknown_column_rejected():
    with pytest.raises(InvalidRelationError):
        _table().column("missing")


def test_key_relation_carries_row_ids():
    rel = _table().key_relation("k")
    assert list(rel.key) == [3, 1, 2]
    assert list(rel.payload) == [0, 1, 2]


def test_gather_prefixes_once():
    table = _table()
    gathered = table.gather(np.array([2, 0]))
    assert list(gathered.column("t.k")) == [2, 3]
    regathered = gathered.gather(np.array([0]))
    assert regathered.column_names == ["t.k", "t.v"]  # no double prefix


def test_filter_mask():
    table = _table()
    out = table.filter(table.column("k") > 1)
    assert list(out.column("v")) == [30, 20]
    with pytest.raises(InvalidRelationError):
        table.filter(np.array([True]))


def test_concat_columns():
    left = Table("l", {"a": np.arange(2)})
    right = Table("r", {"b": np.arange(2) + 10})
    merged = Table.concat_columns("lr", left, right)
    assert merged.column_names == ["a", "b"]
    with pytest.raises(InvalidRelationError):
        Table.concat_columns("bad", left, Table("r2", {"a": np.arange(2)}))
    with pytest.raises(InvalidRelationError):
        Table.concat_columns("bad", left, Table("r3", {"c": np.arange(3)}))


def test_empty_table():
    assert Table("empty").num_rows == 0
