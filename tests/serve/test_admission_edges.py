"""Adversarial unit tests for the admission-policy registry.

Edge cases the property suite's random sweeps cannot pin precisely:
deterministic tie-breaks on equal deadlines, the weighted-fair
starvation bound, empty/singleton queues, a policy raising (or lying)
mid-pop, service-class validation, and per-class attribution of
``deadline_expired`` sheds.
"""

import math

import pytest

from repro.bench.serve_bench import fingerprint
from repro.data import unique_pair
from repro.errors import (
    FaultInvariantError,
    InvalidConfigError,
    SchedulingError,
)
from repro.serve import (
    DEADLINE_CLASSES,
    FaultPlan,
    QueryClass,
    QueryRequest,
    QueryScheduler,
    check_fault_invariants,
    create_admission_policy,
    mixed_workload,
    registered_admission_policies,
    stream_workload,
)
from repro.serve.admission import (
    AdmissionContext,
    AdmissionPolicy,
    EdfAdmission,
    FifoAdmission,
    SjfAdmission,
    WeightedFairAdmission,
)

M = 1_000_000


def _request(qid, *, tenant="default", priority=0, deadline=None, at=0.0):
    return QueryRequest(
        qid=qid,
        spec=unique_pair(8 * M),
        submit_at=at,
        query_class=QueryClass(
            name=f"class-{tenant}",
            tenant=tenant,
            priority=priority,
            deadline_seconds=deadline,
        ),
    )


def _ctx(clock=0.0):
    return AdmissionContext(clock=clock, solo_seconds=lambda r: 1.0)


# ---------------------------------------------------------------------------
# Tie-breaks and singletons
# ---------------------------------------------------------------------------
def test_equal_deadlines_tie_break_deterministically_by_qid():
    # Same class, same submit time -> identical hard deadlines; the
    # winner must be the smallest qid regardless of queue position.
    arrived = [
        _request("q2", deadline=5.0),
        _request("q0", deadline=5.0),
        _request("q1", deadline=5.0),
    ]
    assert EdfAdmission().select(arrived, _ctx()) == 1
    # Equal solo estimates tie-break the same way under SJF.
    assert SjfAdmission().select(arrived, _ctx()) == 1


def test_no_deadline_sorts_last_under_edf():
    arrived = [
        _request("q0", deadline=None),
        _request("q1", deadline=9.0),
    ]
    assert EdfAdmission().select(arrived, _ctx()) == 1


def test_every_policy_picks_the_singleton():
    arrived = [_request("q0", deadline=1.0)]
    for key in registered_admission_policies():
        assert create_admission_policy(key).select(arrived, _ctx()) == 0


def test_empty_workload_is_fine_under_every_policy():
    for key in registered_admission_policies():
        report = QueryScheduler(admission=key).run([])
        assert report.outcomes == []
        assert report.deadline_miss_rate == 0.0


def test_unknown_policy_rejected_eagerly_and_instances_pass_through():
    with pytest.raises(InvalidConfigError, match="fifo"):
        QueryScheduler(admission="lifo")
    with pytest.raises(InvalidConfigError, match="lifo"):
        create_admission_policy("lifo")
    policy = FifoAdmission()
    assert create_admission_policy(policy) is policy


# ---------------------------------------------------------------------------
# Weighted-fair starvation bound
# ---------------------------------------------------------------------------
class _RecordingWeightedFair(WeightedFairAdmission):
    key = "recording_weighted_fair"

    def __init__(self):
        super().__init__()
        self.admitted = []

    def record_admit(self, request, ctx):
        self.admitted.append(request)
        super().record_admit(request, ctx)


def test_weighted_fair_serves_a_flooded_out_tenant_within_one_round():
    # Nine tenant-a queries arrive ahead of one tenant-b query, all at
    # t=0.  FIFO would serve b tenth; weighted fair must serve b by the
    # second admission (one admission per active tenant per round).
    requests = [_request(f"a{i}", tenant="a") for i in range(9)]
    requests.append(_request("b0", tenant="b"))
    policy = _RecordingWeightedFair()
    QueryScheduler(admission=policy).run(requests)
    order = [r.qid for r in policy.admitted]
    assert sorted(order) == sorted(r.qid for r in requests)
    assert order.index("b0") <= 1


def test_weighted_fair_round_gap_never_exceeds_active_tenant_count():
    # Three equal-weight tenants with equal-size queries, grouped by
    # tenant in arrival order: while a tenant has queued work it is
    # served at least once every three admissions.
    requests = [
        _request(f"{tenant}{i}", tenant=tenant)
        for tenant in ("a", "b", "c")
        for i in range(4)
    ]
    policy = _RecordingWeightedFair()
    QueryScheduler(admission=policy).run(requests)
    served = [r.query_class.tenant for r in policy.admitted]
    assert len(served) == len(requests)
    last_seen = {}
    for pos, tenant in enumerate(served):
        if tenant in last_seen:
            assert pos - last_seen[tenant] <= 3, served
        else:
            assert pos < 3, served
        last_seen[tenant] = pos


def test_weighted_fair_priority_weights_shift_the_share():
    # Tenant "hot" (weight 4) pays a quarter of the charge per
    # admission, so its queries front-load the admit order.
    requests = [
        _request(f"h{i}", tenant="hot", priority=4) for i in range(4)
    ] + [_request(f"c{i}", tenant="cold", priority=1) for i in range(4)]
    policy = _RecordingWeightedFair()
    QueryScheduler(admission=policy).run(requests)
    order = [r.query_class.tenant for r in policy.admitted]
    hot_positions = [i for i, t in enumerate(order) if t == "hot"]
    cold_positions = [i for i, t in enumerate(order) if t == "cold"]
    assert sum(hot_positions) < sum(cold_positions)


# ---------------------------------------------------------------------------
# Policies that raise or lie mid-pop
# ---------------------------------------------------------------------------
class _BoomPolicy(AdmissionPolicy):
    key = "boom"

    def __init__(self, *, after):
        self.after = after
        self.calls = 0

    def select(self, arrived, ctx):
        self.calls += 1
        if self.calls > self.after:
            raise RuntimeError("boom")
        return 0


class _LyingPolicy(AdmissionPolicy):
    key = "liar"

    def __init__(self, verdict):
        self.verdict = verdict

    def select(self, arrived, ctx):
        return self.verdict


def test_policy_exception_mid_pop_propagates_and_books_stay_consistent():
    requests = mixed_workload(8)
    scheduler = QueryScheduler(admission=_BoomPolicy(after=2))
    with pytest.raises(RuntimeError, match="boom"):
        scheduler.run(requests)
    # The scheduler instance (and its solo-estimate cache, warmed by
    # the aborted run) must still produce the untouched FIFO schedule.
    scheduler.admission = "fifo"
    recovered = scheduler.run(requests)
    pristine = QueryScheduler().run(mixed_workload(8))
    assert fingerprint(recovered) == fingerprint(pristine)
    assert recovered.makespan == pristine.makespan


@pytest.mark.parametrize("verdict", [-1, 99, True, "0", None, 1.0])
def test_out_of_range_or_mistyped_selection_raises_naming_the_policy(verdict):
    scheduler = QueryScheduler(admission=_LyingPolicy(verdict))
    with pytest.raises(SchedulingError, match="liar"):
        scheduler.run(mixed_workload(4))


def test_streaming_policy_exception_propagates_too():
    with pytest.raises(RuntimeError, match="boom"):
        QueryScheduler(admission=_BoomPolicy(after=1)).run_stream(
            iter(mixed_workload(8))
        )


# ---------------------------------------------------------------------------
# Service-class validation
# ---------------------------------------------------------------------------
def test_query_class_validation_errors():
    with pytest.raises(InvalidConfigError, match="name"):
        QueryClass(name="")
    with pytest.raises(InvalidConfigError, match="tenant"):
        QueryClass(name="x", tenant="")
    with pytest.raises(InvalidConfigError, match="priority"):
        QueryClass(name="x", priority=-1)
    with pytest.raises(InvalidConfigError, match="deadline"):
        QueryClass(name="x", deadline_seconds=0.0)
    with pytest.raises(InvalidConfigError, match="max_degradation"):
        QueryClass(name="x", max_degradation=0.5)
    with pytest.raises(InvalidConfigError, match="query_class"):
        QueryRequest(qid="q", spec=unique_pair(M), query_class="gold")


def test_weight_floors_priority_at_one():
    assert QueryClass(name="x", priority=0).weight == 1
    assert QueryClass(name="x", priority=7).weight == 7


# ---------------------------------------------------------------------------
# deadline_expired sheds: verdict and per-class attribution
# ---------------------------------------------------------------------------
def test_deadline_expired_sheds_are_attributed_per_class():
    report = QueryScheduler(devices=1).run_stream(
        stream_workload(
            1200, seed=3, classes=DEADLINE_CLASSES, deadline_scale=0.05
        ),
        max_queue_depth=256,
    )
    expired = [s for s in report.shed if s.reason == "deadline_expired"]
    assert expired, "expected deadline expiry under 0.05x deadlines"
    # The verdict is distinct from slo_wait and carries the class and
    # tenant the query was submitted under.
    deadline_names = {
        c.name for c in DEADLINE_CLASSES if c.deadline_seconds is not None
    }
    for item in expired:
        assert item.class_name in deadline_names
        assert item.tenant.startswith("tenant-")
        assert item.estimated_wait_seconds >= 0.0
    assert report.deadline_expired_count == len(expired)
    # Per-class stats attribute every expired shed to its own label and
    # fold it into that class's miss rate.
    stats = report.per_class_stats()
    assert sum(s.deadline_expired for s in stats.values()) == len(expired)
    for name, group in stats.items():
        if group.deadline_expired:
            assert name in deadline_names
            assert group.deadline_miss_rate > 0.0
    # Batch mode never sheds, so the same classes only ever record
    # misses there.
    assert "deadline_expired" not in {
        s.reason
        for s in QueryScheduler().run_stream(
            iter(mixed_workload(8))
        ).shed
    }


# ---------------------------------------------------------------------------
# Fault-invariant deadline auditing (negative tests)
# ---------------------------------------------------------------------------
def _completed_report():
    report = QueryScheduler(devices=1).run(
        [_request("q0", deadline=1000.0)]
    )
    assert len(report.outcomes) == 1
    return report


def test_invariant_checker_rejects_unrecorded_deadline_miss():
    report = _completed_report()
    outcome = report.outcomes[0]
    outcome.deadline_at = outcome.finish_at / 2
    outcome.deadline_missed = False
    with pytest.raises(FaultInvariantError, match="not .*recorded"):
        check_fault_invariants(
            report, FaultPlan(), arrivals=1, max_retries=3
        )


def test_invariant_checker_rejects_forged_deadline_miss():
    report = _completed_report()
    outcome = report.outcomes[0]
    assert outcome.finish_at <= outcome.deadline_at
    outcome.deadline_missed = True
    with pytest.raises(FaultInvariantError, match="within its"):
        check_fault_invariants(
            report, FaultPlan(), arrivals=1, max_retries=3
        )


def test_invariant_checker_accepts_honest_deadline_recording():
    report = _completed_report()
    outcome = report.outcomes[0]
    check_fault_invariants(report, FaultPlan(), arrivals=1, max_retries=3)
    outcome.deadline_at = outcome.finish_at / 2
    outcome.deadline_missed = True
    check_fault_invariants(report, FaultPlan(), arrivals=1, max_retries=3)


def test_unclassed_outcomes_audit_trivially():
    report = QueryScheduler().run([QueryRequest(qid="q0", spec=unique_pair(M))])
    assert math.isinf(report.outcomes[0].deadline_at)
    assert not report.outcomes[0].deadline_missed
    check_fault_invariants(report, FaultPlan(), arrivals=1, max_retries=3)
