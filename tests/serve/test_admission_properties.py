"""Differential property suite for the admission-policy registry.

Four properties over 100 recorded seeds and fleets of 1-3 devices:

(a) ``fifo`` (the default) reproduces the recorded pre-registry golden
    schedules bit-identically — the policy hook may not perturb the
    default path;
(b) online incremental extension == batch re-simulation under *every*
    registered policy on classed workloads, device assignments
    included;
(c) conservation — ``completed + shed + failed == arrivals`` — holds
    under every policy crossed with seeded fault plans, and the fault
    invariant audit (which now also checks deadline recording) passes;
(d) ``sjf`` never worsens mean latency against ``fifo`` on the
    canonical 64-client workload.
"""

import json
from pathlib import Path

import pytest

from repro.bench.serve_bench import fingerprint, fingerprint_sharded
from repro.serve import (
    DEADLINE_CLASSES,
    FaultPlan,
    QueryScheduler,
    check_fault_invariants,
    mixed_workload,
    random_workload,
    stream_workload,
    with_classes,
)
from repro.serve.admission import FIFO, registered_admission_policies

GOLDEN_PATH = Path(__file__).parent / "golden_single_device.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
SEEDS = sorted(int(seed) for seed in GOLDEN["seeds"])[:100]
FLEETS = (1, 2, 3)
POLICIES = registered_admission_policies()


def test_suite_covers_100_seeds_and_every_policy():
    assert len(SEEDS) >= 100
    assert FIFO in POLICIES and len(POLICIES) == 4


@pytest.mark.parametrize("seed", SEEDS)
def test_fifo_bit_identical_to_golden(seed):
    """(a) The explicit default policy replays the recorded schedules."""
    entry = GOLDEN["seeds"][str(seed)]
    report = QueryScheduler(devices=1, admission=FIFO).run(
        random_workload(seed)
    )
    assert [list(item) for item in fingerprint(report)] == entry["fingerprint"]
    assert report.makespan == entry["makespan"]
    assert report.peak_reserved_bytes == entry["peak_reserved_bytes"]


@pytest.mark.parametrize("seed", SEEDS)
def test_online_equals_batch_under_every_policy(seed):
    """(b) Reordering composes with sharding without breaking the
    online == batch identity."""
    requests = with_classes(random_workload(seed))
    for policy in POLICIES:
        for devices in FLEETS:
            batch = QueryScheduler(devices=devices, admission=policy).run(
                requests
            )
            online = QueryScheduler(
                devices=devices, admission=policy
            ).run_online(requests)
            assert fingerprint_sharded(online) == fingerprint_sharded(batch), (
                policy,
                devices,
            )
            assert online.makespan == batch.makespan


@pytest.mark.parametrize("seed", SEEDS)
def test_conservation_under_policy_cross_faults(seed):
    """(c) No policy loses a query under crashes and admission faults;
    retried queries re-enter under their original class, audited by the
    fault invariants (deadline recording included)."""
    devices = FLEETS[seed % len(FLEETS)]
    requests = with_classes(random_workload(seed))
    plan = FaultPlan.random(
        seed,
        devices=devices,
        horizon=30.0,
        qids=[request.qid for request in requests],
        admission_fault_rate=0.15,
    )
    for policy in POLICIES:
        scheduler = QueryScheduler(devices=devices, admission=policy)
        report = scheduler.run(requests, faults=plan)
        assert len(report.outcomes) + len(report.failed) == len(requests)
        check_fault_invariants(
            report,
            plan,
            arrivals=len(requests),
            max_retries=scheduler.max_retries,
        )
        # Survivors keep the class they were submitted under.
        labels = {r.qid: r.query_class.name for r in requests}
        for outcome in report.outcomes:
            assert outcome.class_name == labels[outcome.qid]


@pytest.mark.parametrize("policy", POLICIES)
def test_stream_conservation_under_every_policy(policy):
    """(c, streaming) Bounded-queue streaming with deadline classes
    accounts for every arrival: completed + shed + failed == arrivals."""
    arrivals = 1500
    report = QueryScheduler(devices=2, admission=policy).run_stream(
        stream_workload(
            arrivals,
            seed=11,
            classes=DEADLINE_CLASSES,
            deadline_scale=0.25,
        ),
        max_queue_depth=48,
    )
    assert (
        len(report.outcomes) + len(report.shed) + len(report.failed)
        == arrivals
    )
    for shed in report.shed:
        assert shed.reason in ("queue_full", "slo_wait", "deadline_expired")


def test_sjf_never_worsens_mean_latency():
    """(d) On the canonical 64-client workload, shortest-job-first is
    at least as good as FIFO on mean latency."""
    fifo = QueryScheduler(admission=FIFO).run(mixed_workload(64))
    sjf = QueryScheduler(admission="sjf").run(mixed_workload(64))
    assert sjf.mean_latency <= fifo.mean_latency * (1 + 1e-12)
