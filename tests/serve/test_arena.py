"""Shared device-memory arena accounting."""

import pytest

from repro.errors import DeviceMemoryOverflowError
from repro.gpusim import DeviceMemoryArena
from repro.gpusim.spec import SystemSpec

GB = 10**9


def test_reserve_and_release_roundtrip():
    arena = DeviceMemoryArena(8 * GB)
    assert arena.try_reserve("q0", 3 * GB)
    assert arena.try_reserve("q1", 4 * GB)
    assert arena.used_bytes == 7 * GB
    assert arena.free_bytes == 1 * GB
    assert arena.release("q0") == 3 * GB
    assert arena.used_bytes == 4 * GB
    assert not arena.holds("q0")
    assert arena.holds("q1")


def test_overflow_queues_instead_of_crashing():
    arena = DeviceMemoryArena(8 * GB)
    assert arena.try_reserve("q0", 6 * GB)
    # Does not fit: declined with no state change, no exception.
    assert not arena.try_reserve("q1", 3 * GB)
    assert arena.used_bytes == 6 * GB
    assert not arena.holds("q1")
    # After a release it fits.
    arena.release("q0")
    assert arena.try_reserve("q1", 3 * GB)


def test_used_never_exceeds_capacity():
    arena = DeviceMemoryArena(10 * GB)
    granted = 0
    for i, want in enumerate([4, 4, 4, 4, 4]):
        if arena.try_reserve(f"q{i}", want * GB):
            granted += want
        assert arena.used_bytes <= arena.capacity_bytes
        arena.check_invariants()
    assert granted == 8  # two of five declined


def test_peak_tracks_high_water_mark():
    arena = DeviceMemoryArena(8 * GB)
    arena.reserve("a", 2 * GB)
    arena.reserve("b", 5 * GB)
    arena.release("a")
    arena.reserve("c", 1 * GB)
    assert arena.peak_bytes == 7 * GB
    assert arena.peak_bytes <= arena.capacity_bytes


def test_peak_fits_the_default_device():
    capacity = SystemSpec().gpu.device_memory
    arena = DeviceMemoryArena(capacity)
    assert arena.try_reserve("q", capacity)
    assert not arena.try_reserve("overflow", 1)
    assert arena.peak_bytes == capacity


def test_reserve_raises_on_overflow():
    arena = DeviceMemoryArena(1 * GB)
    with pytest.raises(DeviceMemoryOverflowError):
        arena.reserve("big", 2 * GB)


def test_bad_reservations_rejected():
    arena = DeviceMemoryArena(8 * GB)
    arena.reserve("q0", GB)
    with pytest.raises(DeviceMemoryOverflowError):
        arena.try_reserve("q0", GB)  # duplicate owner
    with pytest.raises(DeviceMemoryOverflowError):
        arena.try_reserve("q1", -1)  # negative
    with pytest.raises(DeviceMemoryOverflowError):
        arena.release("unknown")
    with pytest.raises(DeviceMemoryOverflowError):
        DeviceMemoryArena(0)


def test_timeline_records_transitions():
    arena = DeviceMemoryArena(8 * GB)
    arena.reserve("a", 2 * GB, at=0.0)
    arena.reserve("b", 3 * GB, at=1.0)
    arena.release("a", at=2.0)
    assert arena.timeline == [(0.0, 2 * GB), (1.0, 5 * GB), (2.0, 3 * GB)]


def test_double_release_raises_repro_error():
    """A release the arena does not hold must raise, never be ignored:
    a swallowed double release would let the ledger drift below the
    schedule it mirrors.  Pinned as ReproError so serving callers can
    catch the library hierarchy."""
    from repro.errors import ReproError

    arena = DeviceMemoryArena(8 * GB)
    arena.reserve("q0", GB)
    assert arena.release("q0") == GB
    with pytest.raises(DeviceMemoryOverflowError, match="double release"):
        arena.release("q0")
    assert issubclass(DeviceMemoryOverflowError, ReproError)
    # The failed release changed nothing: ledger still drained.
    assert arena.drained and arena.used_bytes == 0


def test_release_on_wrong_device_names_the_device():
    fleet = [DeviceMemoryArena(8 * GB, device=index) for index in range(2)]
    fleet[0].reserve("q0", GB)
    with pytest.raises(DeviceMemoryOverflowError, match="device 1"):
        fleet[1].release("q0")  # misrouted: q0 lives on device 0
    assert fleet[0].holds("q0")


def test_ledger_records_device_ids():
    arena = DeviceMemoryArena(8 * GB, device=3)
    arena.reserve("q0", GB, at=1.5)
    reservation = arena.reservations["q0"]
    assert reservation.device == 3
    assert reservation.granted_at == 1.5
    with pytest.raises(DeviceMemoryOverflowError):
        DeviceMemoryArena(GB, device=-1)


def test_drained_tracks_live_reservations():
    arena = DeviceMemoryArena(8 * GB)
    assert arena.drained
    arena.reserve("a", GB)
    assert not arena.drained
    arena.release("a")
    assert arena.drained
    assert arena.timeline[-1][1] == 0
