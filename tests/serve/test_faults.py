"""Crash-failure fault injection and query recovery.

The robustness contract for the serving fleet, end to end:

* **Inertness** — ``FaultPlan()`` (and ``faults=None``) runs the exact
  fault-free code path: bit-identical to the recorded golden schedules
  on ``devices=1`` and to a plain run on sharded fleets;
* **Chaos** — 100+ seeded random fault plans (devices 1–3, crashes plus
  transient admission failures) always conserve queries
  (``completed + shed + failed == arrivals``), drain every arena
  ledger, respect crash times and retry budgets, and keep
  online == batch under faults;
* **Recovery** — a query lost to a crash is retried on a surviving
  device (front-of-queue, after backoff), budgets exhaust into
  ``"retries_exhausted"``, a fleet with no accepting device left fails
  everything with ``"fleet_lost"``, and an ``add`` event scheduled
  after a total loss rescues the backlog;
* **Interplay** — work stealing × retirement × crash: a stolen query
  whose destination device dies is retried elsewhere without
  double-releasing its original reservation (the arena's ``forced``
  audit log records exactly one reclamation);
* **Validation** — malformed fault plans and fleet-event schedules
  fail loudly (:class:`~repro.errors.FaultPlanError`,
  :class:`~repro.errors.FleetEventError`) before anything is mutated,
  and :func:`~repro.serve.check_fault_invariants` rejects reports that
  violate conservation, crash-time safety, or retry budgets.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.bench.serve_bench import fingerprint, fingerprint_sharded
from repro.data.spec import unique_pair
from repro.errors import (
    DeviceMemoryOverflowError,
    FaultInvariantError,
    FaultPlanError,
    FleetEventError,
    InvalidConfigError,
    SchedulingError,
)
from repro.gpusim.arena import DeviceMemoryArena
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Task
from repro.serve import (
    DeviceCrash,
    FaultPlan,
    FleetEvent,
    QueryRequest,
    QueryScheduler,
    check_fault_invariants,
    mixed_workload,
    random_workload,
    stream_workload,
    validate_fleet_events,
)
from repro.serve.placement import DeviceFleet

GOLDEN_PATH = Path(__file__).parent / "golden_single_device.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

M = 1_000_000
DEFAULT_CAP = 8_589_934_592
#: Device 0 fits the big queries, devices 1+ only the small one — the
#: same shape ``test_hetero.py`` uses to force a steal.
STEAL_CAPS = [3_600_000_000, 2_000_000_000, 2_000_000_000]

#: ≥100 random fault plans, cycling fleet sizes 1–3 (the acceptance
#: floor for the chaos suite).
CHAOS_SEEDS = range(102)


def _steal_workload() -> list[QueryRequest]:
    big = unique_pair(64 * M)
    return [
        QueryRequest(qid="q0", spec=big),
        QueryRequest(qid="q1", spec=big),
        QueryRequest(qid="q2", spec=unique_pair(4 * M)),
    ]


def _check_arenas(report) -> None:
    assert report.arenas is not None
    for arena in report.arenas:
        assert arena.peak_bytes <= arena.capacity_bytes
        arena.check_invariants()
        assert arena.drained
        assert arena.used_bytes == 0
        if arena.timeline:
            assert arena.timeline[-1][1] == 0


def _conserved(report, arrivals: int) -> None:
    shed = len(getattr(report, "shed", ()) or ())
    assert len(report.outcomes) + shed + len(report.failed) == arrivals


# ----------------------------------------------------------------------
# Inertness: the empty plan is bit-identical to the fault-free path.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(0, 200, 10))
def test_empty_plan_matches_golden_single_device(seed):
    entry = GOLDEN["seeds"][str(seed)]
    report = QueryScheduler(devices=1).run(
        random_workload(seed), faults=FaultPlan()
    )
    assert [list(item) for item in fingerprint(report)] == entry["fingerprint"]
    assert report.makespan == entry["makespan"]
    assert report.peak_reserved_bytes == entry["peak_reserved_bytes"]
    assert report.failed == [] and report.retried_count == 0


@pytest.mark.parametrize("devices", [1, 2, 3])
def test_empty_plan_is_bit_identical_to_none(devices):
    for seed in (0, 7, 31):
        plain = QueryScheduler(devices=devices).run_online(
            random_workload(seed)
        )
        empty = QueryScheduler(devices=devices).run_online(
            random_workload(seed), faults=FaultPlan()
        )
        assert fingerprint_sharded(empty) == fingerprint_sharded(plain)
        assert empty.makespan == plain.makespan
        assert empty.failed == []


def test_empty_plan_is_inert_in_stream_mode():
    plain = QueryScheduler(devices=2).run_stream(stream_workload(200, seed=3))
    empty = QueryScheduler(devices=2).run_stream(
        stream_workload(200, seed=3), faults=FaultPlan()
    )
    assert plain.completed == empty.completed
    assert plain.makespan == empty.makespan
    assert empty.failed == [] and empty.failed_count == 0
    assert FaultPlan().is_empty
    FaultPlan().validate(1)  # the empty plan is always valid


# ----------------------------------------------------------------------
# Chaos: ≥100 random plans, devices 1–3, conservation + drained ledgers.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_random_fault_plans(seed):
    devices = 1 + seed % 3
    requests = random_workload(seed)
    base = QueryScheduler(devices=devices).run_online(random_workload(seed))
    plan = FaultPlan.random(
        seed,
        devices=devices,
        horizon=base.makespan,
        qids=[request.qid for request in requests],
        admission_fault_rate=0.25,
    )
    online = QueryScheduler(devices=devices).run_online(
        random_workload(seed), faults=plan
    )
    batch = QueryScheduler(devices=devices).run(
        random_workload(seed), faults=plan
    )
    # Online == batch holds under faults, failures included.
    assert fingerprint_sharded(online) == fingerprint_sharded(batch)
    assert online.failed == batch.failed
    assert online.makespan == batch.makespan
    for report in (online, batch):
        _conserved(report, len(requests))
        _check_arenas(report)
        crashed = {crash.device: crash.at for crash in plan.crashes}
        for outcome in report.outcomes:
            assert 0 <= outcome.retries <= 3
            at = crashed.get(outcome.device)
            if at is not None:
                assert outcome.admit_at < at
                assert outcome.finish_at <= at
        for failure in report.failed:
            assert failure.reason in ("retries_exhausted", "fleet_lost")
            assert 0 <= failure.attempts <= 3


@pytest.mark.parametrize("seed", range(12))
def test_chaos_streaming_fault_plans(seed):
    devices = 1 + seed % 3
    arrivals = 60
    requests = list(stream_workload(arrivals, seed=seed))
    horizon = requests[-1].submit_at + 0.5
    plan = FaultPlan.random(
        seed,
        devices=devices,
        horizon=horizon,
        qids=[request.qid for request in requests],
        admission_fault_rate=0.2,
    )
    kwargs = dict(max_queue_depth=64, compact_every=16, faults=plan)
    report = QueryScheduler(devices=devices).run_stream(
        iter(requests), **kwargs
    )
    _conserved(report, arrivals)
    _check_arenas(report)
    # Determinism: the same faulted stream replays identically.
    again = QueryScheduler(devices=devices).run_stream(
        iter(requests), **kwargs
    )
    assert again.completed == report.completed
    assert again.shed_count == report.shed_count
    assert again.failed == report.failed
    assert again.makespan == report.makespan


def test_faulted_run_is_deterministic():
    plan = FaultPlan(
        crashes=(DeviceCrash(at=0.02, device=1),),
        admission_failures={"q001": 1, "q004": 2},
    )
    runs = [
        QueryScheduler(devices=2).run_online(
            mixed_workload(10, spacing_seconds=0.01), faults=plan
        )
        for _ in range(2)
    ]
    assert fingerprint_sharded(runs[0]) == fingerprint_sharded(runs[1])
    assert runs[0].failed == runs[1].failed
    assert runs[0].makespan == runs[1].makespan


# ----------------------------------------------------------------------
# Targeted recovery semantics.
# ----------------------------------------------------------------------

def test_crash_retries_lost_queries_on_surviving_device():
    requests = mixed_workload(6)
    base = QueryScheduler(devices=2).run_online(mixed_workload(6))
    victims = [o for o in base.outcomes if o.device == 1]
    assert victims, "baseline must place work on device 1"
    crash_at = min(o.finish_at for o in victims) / 2
    plan = FaultPlan(crashes=(DeviceCrash(at=crash_at, device=1),))
    report = QueryScheduler(devices=2).run_online(
        mixed_workload(6), faults=plan
    )
    # Everything completes — nothing is lost, nothing fails.
    _conserved(report, len(requests))
    assert report.failed == []
    _check_arenas(report)
    retried = [o for o in report.outcomes if o.retries]
    assert retried, "the crash must actually cost at least one retry"
    for outcome in retried:
        assert outcome.device == 0  # re-admitted on the survivor
        assert outcome.admit_at >= crash_at  # after the crash + backoff
    assert report.retried_count == len(retried)
    # Device 1's arena shows why it drained: forced reclamations.
    forced = report.arenas[1].forced
    assert forced and all(at == crash_at for at, _, _ in forced)


def test_query_finished_before_the_crash_keeps_its_outcome():
    base = QueryScheduler(devices=1).run_online(mixed_workload(2))
    finishes = sorted(o.finish_at for o in base.outcomes)
    # Crash strictly between the two finishes: the first query's work
    # is history, only the second is lost.
    crash_at = (finishes[0] + finishes[1]) / 2
    plan = FaultPlan(crashes=(DeviceCrash(at=crash_at, device=0),))
    report = QueryScheduler(devices=1, max_retries=0).run_online(
        mixed_workload(2), faults=plan
    )
    survivors = {o.qid: o for o in report.outcomes}
    assert len(survivors) == 1 and len(report.failed) == 1
    (kept,) = survivors.values()
    assert kept.finish_at <= crash_at and kept.retries == 0
    (failure,) = report.failed
    assert failure.reason == "retries_exhausted"
    assert failure.attempts == 0 and failure.last_device == 0
    _check_arenas(report)


def test_exhausted_retry_budget_records_failure():
    base = QueryScheduler(devices=1).run_online(mixed_workload(1))
    crash_at = base.outcomes[0].finish_at / 2
    plan = FaultPlan(crashes=(DeviceCrash(at=crash_at, device=0),))
    report = QueryScheduler(devices=1, max_retries=0).run_online(
        mixed_workload(1), faults=plan
    )
    assert report.outcomes == []
    (failure,) = report.failed
    assert failure.reason == "retries_exhausted"
    assert failure.attempts == 0
    assert failure.last_device == 0
    _check_arenas(report)


def test_total_fleet_loss_fails_everything_as_fleet_lost():
    base = QueryScheduler(devices=1).run_online(mixed_workload(3))
    crash_at = min(o.finish_at for o in base.outcomes) / 2
    plan = FaultPlan(crashes=(DeviceCrash(at=crash_at, device=0),))
    report = QueryScheduler(devices=1).run_online(
        mixed_workload(3), faults=plan
    )
    _conserved(report, 3)
    assert report.outcomes == []
    assert len(report.failed) == 3
    assert all(f.reason == "fleet_lost" for f in report.failed)
    _check_arenas(report)


def test_add_event_rescues_the_backlog_after_total_loss():
    base = QueryScheduler(devices=1).run_online(mixed_workload(3))
    crash_at = min(o.finish_at for o in base.outcomes) / 2
    plan = FaultPlan(crashes=(DeviceCrash(at=crash_at, device=0),))
    events = [
        FleetEvent(
            at=crash_at + 0.01, action="add", capacity_bytes=DEFAULT_CAP
        )
    ]
    report = QueryScheduler(devices=1).run_online(
        mixed_workload(3), fleet_events=events, faults=plan
    )
    # The joining device (index 1) picks the whole backlog back up.
    _conserved(report, 3)
    assert report.failed == []
    assert len(report.outcomes) == 3
    assert all(o.device == 1 for o in report.outcomes)
    assert all(o.admit_at >= crash_at for o in report.outcomes)
    _check_arenas(report)


def test_transient_admission_failures_charge_the_retry_budget():
    plan = FaultPlan(admission_failures={"q000": 2})
    report = QueryScheduler(devices=1).run_online(
        mixed_workload(2), faults=plan
    )
    outcomes = {o.qid: o for o in report.outcomes}
    assert report.failed == []
    assert outcomes["q000"].retries == 2
    # Two refusals, linear backoff 0.05: ready at 0.05, then 0.05+0.10.
    assert outcomes["q000"].admit_at == pytest.approx(0.15)
    assert outcomes["q001"].retries == 0
    _check_arenas(report)


def test_admission_faults_alone_can_exhaust_the_budget():
    plan = FaultPlan(admission_failures={"q000": 5})
    report = QueryScheduler(devices=1, max_retries=2).run_online(
        mixed_workload(2), faults=plan
    )
    (failure,) = report.failed
    assert failure.qid == "q000"
    assert failure.reason == "retries_exhausted"
    assert failure.attempts == 2 and failure.last_device is None
    assert [o.qid for o in report.outcomes] == ["q001"]
    _check_arenas(report)


def test_streaming_crash_conserves_and_recovers():
    requests = list(stream_workload(80, seed=11))
    horizon = requests[-1].submit_at
    plan = FaultPlan(crashes=(DeviceCrash(at=horizon / 2, device=1),))
    report = QueryScheduler(devices=2).run_stream(
        iter(requests), max_queue_depth=32, compact_every=16, faults=plan
    )
    _conserved(report, 80)
    _check_arenas(report)
    assert report.completed > 0
    # Everything that completed after the crash ran on the survivor.
    assert report.failed_rate == len(report.failed) / 80


# ----------------------------------------------------------------------
# Interplay: stealing × retirement × crash (satellite).
# ----------------------------------------------------------------------

def test_stolen_query_survives_destination_crash_without_double_release():
    """q2 is stolen by device 1 at t=0 (device 0 is full, the FIFO head
    q1 is blocked).  Device 2 retires gracefully, then device 1 crashes
    mid-q2: the stolen query must be retried on device 0 and its
    original reservation reclaimed exactly once."""
    base = QueryScheduler(
        devices=3, device_capacities=STEAL_CAPS, steal=True
    ).run_online(_steal_workload())
    (q2_base,) = [o for o in base.outcomes if o.qid == "q2"]
    assert q2_base.stolen and q2_base.device == 1 and q2_base.admit_at == 0.0
    crash_at = q2_base.finish_at / 2
    events = [FleetEvent(at=crash_at / 2, action="retire", device=2)]
    plan = FaultPlan(crashes=(DeviceCrash(at=crash_at, device=1),))
    report = QueryScheduler(
        devices=3, device_capacities=STEAL_CAPS, steal=True
    ).run_online(_steal_workload(), fleet_events=events, faults=plan)
    _conserved(report, 3)
    assert report.failed == []
    outcomes = {o.qid: o for o in report.outcomes}
    q2 = outcomes["q2"]
    assert q2.retries == 1
    assert q2.device == 0  # device 2 retired, device 1 dead
    assert q2.admit_at >= crash_at
    # Exactly one forced reclamation: q2's grant on the dead device,
    # logged at the crash time.  A double release would have raised
    # DeviceMemoryOverflowError and failed the run outright.
    (reclaimed,) = report.arenas[1].forced
    at, owner, nbytes = reclaimed
    assert at == crash_at and owner == "q2" and nbytes > 0
    assert report.arenas[2].forced == []  # retirement is a clean drain
    _check_arenas(report)


# ----------------------------------------------------------------------
# Up-front validation (satellite): fleet events and fault plans.
# ----------------------------------------------------------------------

def test_fleet_event_schedule_validated_before_any_mutation():
    with pytest.raises(FleetEventError, match="retires device 5"):
        QueryScheduler(devices=2).run(
            mixed_workload(2),
            fleet_events=[FleetEvent(at=0.5, action="retire", device=5)],
        )
    with pytest.raises(FleetEventError, match="device 1 twice"):
        QueryScheduler(devices=2).run_online(
            mixed_workload(2),
            fleet_events=[
                FleetEvent(at=0.2, action="retire", device=1),
                FleetEvent(at=0.4, action="retire", device=1),
            ],
        )
    # FleetEventError is an InvalidConfigError: existing handlers keep
    # catching it.
    assert issubclass(FleetEventError, InvalidConfigError)
    # Retiring a device an earlier event added is legitimate.
    validate_fleet_events(
        [
            FleetEvent(at=0.1, action="add", capacity_bytes=DEFAULT_CAP),
            FleetEvent(at=0.3, action="retire", device=1),
        ],
        1,
    )


def test_fault_plan_validation_rejects_bad_plans():
    with pytest.raises(FaultPlanError, match=">= 0"):
        DeviceCrash(at=-1.0, device=0)
    with pytest.raises(FaultPlanError, match=">= 0"):
        DeviceCrash(at=0.0, device=-1)
    with pytest.raises(FaultPlanError, match="sorted"):
        FaultPlan(
            crashes=(
                DeviceCrash(at=2.0, device=0),
                DeviceCrash(at=1.0, device=1),
            )
        ).validate(2)
    with pytest.raises(FaultPlanError, match="dies once"):
        FaultPlan(
            crashes=(
                DeviceCrash(at=1.0, device=0),
                DeviceCrash(at=2.0, device=0),
            )
        ).validate(1)
    with pytest.raises(FaultPlanError, match="only 1 device"):
        FaultPlan(crashes=(DeviceCrash(at=1.0, device=1),)).validate(1)
    with pytest.raises(FaultPlanError, match="positive"):
        FaultPlan(admission_failures={"q0": 0}).validate(1)
    with pytest.raises(FaultPlanError, match="non-empty"):
        FaultPlan(admission_failures={"": 1}).validate(1)
    assert issubclass(FaultPlanError, InvalidConfigError)


def test_fault_plan_validated_by_the_scheduler_up_front():
    bad = FaultPlan(crashes=(DeviceCrash(at=1.0, device=3),))
    with pytest.raises(FaultPlanError, match="device 3"):
        QueryScheduler(devices=2).run(mixed_workload(2), faults=bad)
    # A crash of a device an `add` event creates by then is valid...
    plan = FaultPlan(crashes=(DeviceCrash(at=1.0, device=2),))
    events = [FleetEvent(at=0.5, action="add", capacity_bytes=DEFAULT_CAP)]
    plan.validate(2, events)
    # ...but not if the add lands after the crash.
    late = [FleetEvent(at=2.0, action="add", capacity_bytes=DEFAULT_CAP)]
    with pytest.raises(FaultPlanError, match="exist by then"):
        plan.validate(2, late)


def test_scheduler_retry_knobs_are_validated():
    with pytest.raises(InvalidConfigError, match="max_retries"):
        QueryScheduler(max_retries=-1)
    with pytest.raises(InvalidConfigError, match="retry_backoff"):
        QueryScheduler(retry_backoff_seconds=-0.1)


def test_fault_plan_random_is_deterministic_and_bounded():
    kwargs = dict(
        devices=3,
        horizon=5.0,
        qids=[f"q{i}" for i in range(20)],
        admission_fault_rate=0.5,
        max_admission_faults=2,
    )
    one = FaultPlan.random(42, **kwargs)
    two = FaultPlan.random(42, **kwargs)
    assert one == two
    assert FaultPlan.random(43, **kwargs) != one
    for seed in range(30):
        plan = FaultPlan.random(seed, **kwargs)
        plan.validate(3)
        assert all(0.0 <= c.at <= 5.0 for c in plan.crashes)
        assert len({c.device for c in plan.crashes}) == len(plan.crashes)
        assert all(1 <= n <= 2 for n in plan.admission_failures.values())
        spared = FaultPlan.random(
            seed, allow_total_loss=False, **kwargs
        )
        assert len(spared.crashes) <= 2  # at least one device survives


# ----------------------------------------------------------------------
# The invariant checker itself.
# ----------------------------------------------------------------------

def _fake_report(**overrides):
    fields = dict(outcomes=[], failed=[], shed=[], arenas=[], schedule=None)
    fields.update(overrides)
    return SimpleNamespace(**fields)


def test_invariant_checker_rejects_conservation_violations():
    with pytest.raises(FaultInvariantError, match="conservation"):
        check_fault_invariants(
            _fake_report(), FaultPlan(), arrivals=1, max_retries=3
        )
    assert issubclass(FaultInvariantError, SchedulingError)


def test_invariant_checker_rejects_post_crash_completions():
    plan = FaultPlan(crashes=(DeviceCrash(at=1.0, device=0),))
    ghost = SimpleNamespace(
        qid="q0", device=0, admit_at=0.5, finish_at=2.0, retries=0
    )
    with pytest.raises(FaultInvariantError, match="after the crash"):
        check_fault_invariants(
            _fake_report(outcomes=[ghost]), plan, arrivals=1, max_retries=3
        )
    late = SimpleNamespace(
        qid="q1", device=0, admit_at=1.0, finish_at=1.0, retries=0
    )
    with pytest.raises(FaultInvariantError, match="at or after"):
        check_fault_invariants(
            _fake_report(outcomes=[late]), plan, arrivals=1, max_retries=3
        )


def test_invariant_checker_rejects_blown_retry_budgets():
    greedy = SimpleNamespace(
        qid="q0", device=0, admit_at=0.0, finish_at=1.0, retries=4
    )
    with pytest.raises(FaultInvariantError, match="over the budget"):
        check_fault_invariants(
            _fake_report(outcomes=[greedy]),
            FaultPlan(),
            arrivals=1,
            max_retries=3,
        )


def test_invariant_checker_rejects_undrained_arenas():
    arena = DeviceMemoryArena(capacity_bytes=100, device=0)
    arena.reserve("q0", 10)
    with pytest.raises(FaultInvariantError, match="still holds"):
        check_fault_invariants(
            _fake_report(
                outcomes=[
                    SimpleNamespace(
                        qid="q0",
                        device=0,
                        admit_at=0.0,
                        finish_at=1.0,
                        retries=0,
                    )
                ],
                arenas=[arena],
            ),
            FaultPlan(),
            arrivals=1,
            max_retries=3,
        )


# ----------------------------------------------------------------------
# Layer unit tests: arena audit helpers, engine.crash, fleet crash.
# ----------------------------------------------------------------------

def test_arena_force_release_keeps_the_ledger_exact():
    arena = DeviceMemoryArena(capacity_bytes=100, device=1)
    arena.reserve("q0", 40, at=0.0)
    arena.reserve("q1", 25, at=0.5)
    assert [r.owner for r in arena.reservations_of("q")] == ["q0", "q1"]
    assert [r.owner for r in arena.reservations_of("q1")] == ["q1"]
    assert arena.reservations_of("zz") == ()
    freed = arena.force_release("q0", at=1.0)
    assert freed == 40
    assert arena.used_bytes == 25
    assert arena.forced == [(1.0, "q0", 40)]
    # Forcing the same owner twice is the exact double-release the
    # ledger exists to catch.
    with pytest.raises(DeviceMemoryOverflowError, match="reconciled twice"):
        arena.force_release("q0", at=1.0)
    assert arena.reconcile(["q1"], at=2.0) == 25
    assert arena.drained
    assert arena.forced == [(1.0, "q0", 40), (2.0, "q1", 25)]
    arena.check_invariants()
    # Timeline recorded the forced releases like any other transition.
    assert arena.timeline[-1][1] == 0


def test_engine_crash_invalidates_the_unfinished_tail():
    engine = PipelineEngine({"gpu": 1, "h2d": 1})
    engine.add(Task("a", "h2d", 1.0))
    engine.add(Task("b", "gpu", 2.0, ("a",)))
    engine.add(Task("c", "gpu", 3.0, ("b",)))
    schedule = engine.run()
    assert schedule.makespan == 6.0
    lost = engine.crash(schedule, 3.0)  # a (1.0) and b (3.0) survive
    assert lost == ["c"]
    assert sorted(schedule.tasks) == ["a", "b"]
    assert engine.is_crashed and engine.is_retired
    # Sealed harder than retirement: no new work, no re-simulation.
    with pytest.raises(SchedulingError, match="retired"):
        engine.add(Task("d", "gpu", 1.0))
    with pytest.raises(SchedulingError, match="crash"):
        engine.run()
    with pytest.raises(SchedulingError, match="retired"):
        engine.extend(schedule, [Task("d", "gpu", 1.0)])
    # Compaction still sweeps the surviving history.
    assert engine.compact(schedule, 6.0) == 2
    assert schedule.tasks == {}
    assert schedule.retired_makespan == 3.0  # only completed work


def test_engine_crash_rejects_foreign_schedules():
    engine = PipelineEngine({"gpu": 1})
    engine.add(Task("a", "gpu", 1.0))
    schedule = engine.run()
    other = PipelineEngine({"gpu": 1})
    other.add(Task("x", "gpu", 1.0))
    other.add(Task("y", "gpu", 1.0))
    with pytest.raises(SchedulingError):
        engine.crash(other.run(), 0.5)


def test_fleet_crash_device_validation():
    fleet = DeviceFleet([DEFAULT_CAP, DEFAULT_CAP])
    with pytest.raises(InvalidConfigError, match="unknown device 5"):
        fleet.crash_device(5, 1.0)
    fleet.crash_device(1, 1.0)
    assert fleet[1].crashed and fleet[1].crashed_at == 1.0
    assert not fleet[1].accepting
    with pytest.raises(InvalidConfigError, match="already crashed"):
        fleet.crash_device(1, 2.0)
    # Unlike retire, a crash may take the last accepting device.
    fleet.crash_device(0, 3.0)
    assert fleet.active() == []


def test_crash_supersedes_a_pending_retirement():
    fleet = DeviceFleet([DEFAULT_CAP, DEFAULT_CAP])
    fleet[1].running.add("q9")  # mid-drain: retirement cannot finalize
    fleet.retire_device(1)
    assert fleet[1].retiring and not fleet[1].retired
    assert fleet.crash_device(1, 1.0) == ["q9"]
    # The crash wins: finalize_retirement must not re-seal the engine.
    assert fleet[1].finalize_retirement() is False
    assert fleet[1].crashed and not fleet[1].retired
