"""Heterogeneous, elastic fleets: calibrations, events, stealing.

Covers the per-device refactor end to end:

* **Homogeneous no-op** — explicitly spelling equal per-device
  capacities/calibrations is bit-identical to the implicit default
  over 100+ randomized seeds (the refactor's falsifier, alongside the
  golden suite in ``test_placement_properties.py``);
* **Unequal capacities** — placement only targets devices a query
  fits, and every per-device arena stays within its *own* cap;
* **Per-device calibrations** — a fast+slow fleet strictly beats the
  slow device alone on the 64-client acceptance workload;
* **Elasticity** — mid-run ``add`` never regresses the makespan,
  ``retire`` drains without ever admitting past the retirement time,
  and invalid events/retirements fail loudly;
* **Work stealing** — an idle device pulls admissible work past a
  blocked FIFO head, accounting stays exact (stream:
  ``completed + shed == arrivals``), and stealing never delays any
  admission;
* **CLI plumbing** — ``--device-caps`` / ``--device-calib`` parsing
  and the ``serve_hetero_*`` / ``serve_steal_*`` perf-entry schema.
"""

import pytest

from repro.bench.serve_bench import (
    fingerprint_sharded,
    hetero_perf_entries,
    parse_device_calib,
    parse_device_caps,
    run_serve,
    verify_report,
)
from repro.data.spec import unique_pair
from repro.errors import InvalidConfigError, SchedulingError
from repro.gpusim.calibration import (
    CALIBRATION_PRESETS,
    Calibration,
    calibration_preset,
)
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Task
from repro.serve import (
    FleetEvent,
    QueryScheduler,
    mixed_workload,
    random_workload,
    stream_workload,
)
from repro.serve.placement import DeviceFleet
from repro.serve.scheduler import QueryRequest

M = 1_000_000
DEFAULT_CAP = 8_589_934_592  # SystemSpec().gpu.device_memory

#: A head-of-line blocking fleet: after the first big query fills
#: device 0, the second big query fits nowhere (device 1 is too small
#: for any admissible strategy), so an idle device 1 can only be used
#: by stealing the small query waiting behind the blocked head.
STEAL_CAPS = [3_600_000_000, 2_000_000_000]


def _steal_workload() -> list[QueryRequest]:
    big = unique_pair(64 * M)
    return [
        QueryRequest(qid="q0", spec=big),
        QueryRequest(qid="q1", spec=big),
        QueryRequest(qid="q2", spec=unique_pair(4 * M)),
    ]


# ----------------------------------------------------------------------
# Homogeneous fleets: the refactor must be a bit-identical no-op.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(100))
def test_explicit_homogeneous_args_are_a_noop(seed):
    """Threading per-device capacities/calibrations through estimates,
    plans and placement must not move a single float when every device
    is equal — checked over 100 randomized workloads."""
    default = QueryScheduler(devices=2).run_online(random_workload(seed))
    explicit = QueryScheduler(
        devices=2,
        device_capacities=[DEFAULT_CAP, DEFAULT_CAP],
        device_calibrations=[None, None],
    ).run_online(random_workload(seed))
    assert fingerprint_sharded(explicit) == fingerprint_sharded(default)
    assert explicit.makespan == default.makespan
    assert explicit.device_peak_bytes == default.device_peak_bytes


def test_ctor_validates_per_device_argument_lengths():
    with pytest.raises(InvalidConfigError, match="device_capacities"):
        QueryScheduler(devices=2, device_capacities=[DEFAULT_CAP])
    with pytest.raises(InvalidConfigError, match="device_calibrations"):
        QueryScheduler(devices=2, device_calibrations=[None])
    with pytest.raises(InvalidConfigError, match="positive"):
        QueryScheduler(devices=1, device_capacities=[0])


# ----------------------------------------------------------------------
# Unequal capacities.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(20))
def test_unequal_capacities_respected_per_device(seed):
    caps = [DEFAULT_CAP, 2_000_000_000]
    report = QueryScheduler(devices=2, device_capacities=caps).run_online(
        random_workload(seed)
    )
    assert report.device_capacity_bytes == tuple(caps)
    for outcome in report.outcomes:
        assert outcome.reserved_bytes <= caps[outcome.device]
    assert report.arenas is not None
    for arena, cap in zip(report.arenas, caps):
        assert arena.capacity_bytes == cap
        assert arena.peak_bytes <= cap
        arena.check_invariants()
        assert arena.drained
    batch = QueryScheduler(devices=2, device_capacities=caps).run(
        random_workload(seed)
    )
    assert fingerprint_sharded(batch) == fingerprint_sharded(report)


# ----------------------------------------------------------------------
# Per-device calibrations.
# ----------------------------------------------------------------------

def test_fast_plus_slow_fleet_beats_slow_alone():
    """The acceptance bar: on the 64-client canonical workload a
    two-device fast+slow fleet must strictly beat the slow device
    serving alone."""
    slow = calibration_preset("slow")
    fast = calibration_preset("fast")
    alone = QueryScheduler(
        devices=1, device_calibrations=[slow]
    ).run_online(mixed_workload(64))
    fleet = QueryScheduler(
        devices=2, device_calibrations=[fast, slow]
    ).run_online(mixed_workload(64))
    assert fleet.makespan < alone.makespan
    assert {o.device for o in fleet.outcomes} == {0, 1}


def test_hetero_online_matches_batch():
    for seed in range(10):
        kwargs = dict(
            devices=2,
            device_capacities=[DEFAULT_CAP, 4_000_000_000],
            device_calibrations=[
                calibration_preset("fast"),
                calibration_preset("slow"),
            ],
        )
        batch = QueryScheduler(**kwargs).run(random_workload(seed))
        online = QueryScheduler(**kwargs).run_online(random_workload(seed))
        assert fingerprint_sharded(online) == fingerprint_sharded(batch)
        assert online.makespan == batch.makespan


def test_calibration_presets_and_validation():
    assert set(CALIBRATION_PRESETS) == {"default", "fast", "slow"}
    assert calibration_preset("default") == Calibration()
    with pytest.raises(ValueError, match="registered presets"):
        calibration_preset("turbo")
    fast = Calibration().gpu_scaled(2.0)
    fast.validate()
    assert fast.kernel_launch_seconds < Calibration().kernel_launch_seconds
    with pytest.raises(ValueError, match="gpu_scan_efficiency"):
        Calibration(gpu_scan_efficiency=0.0).validate()
    with pytest.raises(ValueError):
        Calibration().gpu_scaled(0.0)


# ----------------------------------------------------------------------
# Elasticity: mid-run join / leave.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(15))
@pytest.mark.parametrize("at", [0.0, 0.5])
def test_adding_a_device_never_regresses_makespan(seed, at):
    base = QueryScheduler(devices=1).run_online(random_workload(seed))
    grown = QueryScheduler(devices=1).run_online(
        random_workload(seed),
        fleet_events=[
            FleetEvent(at=at, action="add", capacity_bytes=DEFAULT_CAP)
        ],
    )
    assert grown.makespan <= base.makespan * (1 + 1e-12), (
        f"seed {seed}: adding a device at t={at} made the makespan "
        f"worse ({grown.makespan!r} vs {base.makespan!r})"
    )
    # The device materializes iff the run is still going at `at`; an
    # event past the last finish never fires.
    assert grown.devices == (2 if base.makespan > at else 1)


def test_retired_device_never_admits_after_the_event():
    retire_at = 0.4
    requests = mixed_workload(24, spacing_seconds=0.05)
    report = QueryScheduler(devices=2).run_online(
        requests,
        fleet_events=[FleetEvent(at=retire_at, action="retire", device=1)],
    )
    assert len(report.outcomes) == len(requests)  # drains, never drops
    for outcome in report.outcomes:
        if outcome.device == 1:
            assert outcome.admit_at < retire_at
    assert report.arenas is not None
    for arena in report.arenas:
        assert arena.drained


def test_retire_then_add_round_trip_in_stream():
    report = QueryScheduler(devices=2, steal=True).run_stream(
        stream_workload(300, arrival_rate=150.0, seed=3),
        slo_wait_seconds=0.05,
        fleet_events=[
            FleetEvent(at=0.3, action="retire", device=1),
            FleetEvent(at=0.9, action="add", capacity_bytes=DEFAULT_CAP),
        ],
    )
    assert report.completed + report.shed_count == report.arrivals == 300
    assert report.devices == 3
    for outcome in report.outcomes:
        if outcome.device == 1:
            assert outcome.admit_at < 0.3


def test_fleet_event_and_retirement_validation():
    with pytest.raises(InvalidConfigError, match="capacity_bytes"):
        FleetEvent(at=0.0, action="add")
    with pytest.raises(InvalidConfigError, match="next free index"):
        FleetEvent(at=0.0, action="add", capacity_bytes=1, device=0)
    with pytest.raises(InvalidConfigError, match="device index"):
        FleetEvent(at=0.0, action="retire")
    with pytest.raises(InvalidConfigError, match="unknown"):
        FleetEvent(at=0.0, action="rebalance")
    with pytest.raises(InvalidConfigError, match=">= 0"):
        FleetEvent(at=-1.0, action="retire", device=0)

    fleet = DeviceFleet([DEFAULT_CAP, DEFAULT_CAP])
    with pytest.raises(InvalidConfigError, match="unknown device"):
        fleet.retire_device(5)
    fleet.retire_device(1)
    with pytest.raises(InvalidConfigError, match="already retiring"):
        fleet.retire_device(1)
    with pytest.raises(InvalidConfigError, match="last accepting"):
        fleet.retire_device(0)
    assert [d.index for d in fleet.active()] == [0]


def test_retired_engine_rejects_new_work():
    engine = PipelineEngine({"gpu": 1})
    engine.add(Task("a", "gpu", 1.0))
    engine.retire()
    assert engine.is_retired
    with pytest.raises(SchedulingError, match="retired"):
        engine.add(Task("b", "gpu", 1.0))
    engine.retire()  # idempotent


# ----------------------------------------------------------------------
# Work stealing.
# ----------------------------------------------------------------------

def test_steal_admits_past_a_blocked_head():
    """With the head blocked on every device, an idle small device
    must pull the admissible query waiting behind it."""
    stolen_run = QueryScheduler(
        devices=2, device_capacities=STEAL_CAPS, steal=True
    ).run_online(_steal_workload())
    assert stolen_run.stolen_count == 1
    (q2,) = [o for o in stolen_run.outcomes if o.qid == "q2"]
    assert q2.stolen and q2.device == 1 and q2.admit_at == 0.0

    fifo_run = QueryScheduler(
        devices=2, device_capacities=STEAL_CAPS, steal=False
    ).run_online(_steal_workload())
    assert fifo_run.stolen_count == 0
    fifo_admits = {o.qid: o.admit_at for o in fifo_run.outcomes}
    (q2_fifo,) = [o for o in fifo_run.outcomes if o.qid == "q2"]
    assert q2_fifo.admit_at > 0.0  # it really was stuck behind the head
    # Stealing never delays anyone and never worsens the makespan.
    for outcome in stolen_run.outcomes:
        assert outcome.admit_at <= fifo_admits[outcome.qid]
    assert stolen_run.makespan <= fifo_run.makespan


def test_steal_matches_between_batch_and_online():
    kwargs = dict(devices=2, device_capacities=STEAL_CAPS, steal=True)
    batch = QueryScheduler(**kwargs).run(_steal_workload())
    online = QueryScheduler(**kwargs).run_online(_steal_workload())
    assert fingerprint_sharded(batch) == fingerprint_sharded(online)
    assert batch.stolen_count == online.stolen_count == 1


def test_stream_steal_accounting_is_exact():
    report = QueryScheduler(devices=2, steal=True).run_stream(
        stream_workload(400, arrival_rate=200.0, seed=7),
        slo_wait_seconds=0.05,
    )
    assert report.completed + report.shed_count == report.arrivals == 400
    assert report.arenas is not None
    for arena in report.arenas:
        assert arena.drained


def test_steal_off_is_the_default_and_changes_nothing():
    for seed in range(10):
        default = QueryScheduler(devices=2).run_online(random_workload(seed))
        explicit = QueryScheduler(devices=2, steal=False).run_online(
            random_workload(seed)
        )
        assert fingerprint_sharded(explicit) == fingerprint_sharded(default)


# ----------------------------------------------------------------------
# Bench / CLI plumbing.
# ----------------------------------------------------------------------

def test_parse_device_caps():
    assert parse_device_caps(None, 2) is None
    assert parse_device_caps("8,2", 2) == [8_000_000_000, 2_000_000_000]
    with pytest.raises(ValueError, match="--device-caps has 1 entries"):
        parse_device_caps("8", 2)
    with pytest.raises(ValueError, match="--device-caps must be"):
        parse_device_caps("8,banana", 2)
    with pytest.raises(ValueError, match="positive"):
        parse_device_caps("8,0", 2)


def test_parse_device_calib():
    assert parse_device_calib(None, 2) is None
    fast, slow = parse_device_calib("fast,slow", 2)
    assert fast == calibration_preset("fast")
    assert slow == calibration_preset("slow")
    with pytest.raises(ValueError, match="--device-calib has 1 entries"):
        parse_device_calib("fast", 2)
    with pytest.raises(ValueError, match="--device-calib.*turbo"):
        parse_device_calib("fast,turbo", 2)


def test_hetero_perf_entries_schema():
    report = run_serve(
        8,
        devices=2,
        device_calibrations=[
            calibration_preset("fast"),
            calibration_preset("slow"),
        ],
    )
    entries = hetero_perf_entries(report, 0.25, clients=8, steal=False)
    assert set(entries) == {
        "serve_hetero_wall[8x2]",
        "serve_hetero_makespan[8x2]",
    }
    for entry in entries.values():
        assert entry.n == 8 and entry.wall_seconds > 0

    stolen_report = QueryScheduler(
        devices=2, device_capacities=STEAL_CAPS, steal=True
    ).run_online(_steal_workload())
    verify_report(stolen_report, clients=3, check_serial=False)
    steal_entries = hetero_perf_entries(
        stolen_report, 0.25, clients=3, steal=True
    )
    assert set(steal_entries) == {
        "serve_steal_wall[3x2]",
        "serve_steal_makespan[3x2]",
        "serve_steal_stolen[3x2]",
    }
    # The stolen series carries the stolen-admission count of the run.
    assert steal_entries["serve_steal_stolen[3x2]"].wall_seconds == 1.0
