"""Differential suite for the learned cost-model serving path.

Mirrors the placement/fault golden discipline for the ``learned`` flag:

(a) **Inertness** — with a fitted model *installed* process-wide but
    ``learned=False`` (the default), every recorded golden seed stays
    bit-identical: installation without activation may not perturb a
    single admission, placement, reservation or finish time;
(b) **Safety under activation** — ``learned=True`` on a two-device
    fleet may legitimately pick different ladder rungs, but every run
    must still pass the full fault-invariant audit (conservation,
    arena reconciliation, retry budgets) and replay deterministically;
(c) **Graceful absence** — ``learned=True`` with no model installed
    (or an empty model) is exactly the analytic path.
"""

import json
from pathlib import Path

import pytest

from repro.bench.serve_bench import fingerprint, fingerprint_sharded
from repro.core import learned_cost, sample_store
from repro.core.learned_cost import LearnedCostModel
from repro.core.sample_store import SampleStore
from repro.serve import QueryScheduler, random_workload
from repro.serve.faults import FaultPlan, check_fault_invariants

GOLDEN_PATH = Path(__file__).parent / "golden_single_device.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

#: Every recorded golden seed — the learned-off identity sweep runs all
#: of them, same contract as the placement property suite.
SEEDS = sorted(int(seed) for seed in GOLDEN["seeds"])

#: 50 randomized workloads for the learned-on invariant property.
PROPERTY_SEEDS = tuple(range(0, 100, 2))

#: Workloads whose estimates train the module's fitted model.
RECORDING_SEEDS = (0, 60, 120, 180)


@pytest.fixture(scope="module")
def model():
    """One fitted model for the whole module, trained by recording the
    estimates of a few golden-seed serve runs."""
    store = SampleStore()
    sample_store.attach(store)
    try:
        for seed in RECORDING_SEEDS:
            QueryScheduler(devices=1).run_online(random_workload(seed))
    finally:
        sample_store.detach()
    fitted = LearnedCostModel.fit(store)
    assert len(fitted) > 0, "recording produced no fittable fingerprint"
    return fitted


@pytest.fixture
def installed(model):
    learned_cost.set_model(model)
    yield model
    learned_cost.clear_model()


def _golden_matches(report, entry) -> None:
    assert [list(item) for item in fingerprint(report)] == entry["fingerprint"]
    assert report.makespan == entry["makespan"]
    assert report.peak_reserved_bytes == entry["peak_reserved_bytes"]


# ---------------------------------------------------------------------------
# (a) learned-off bit-identity on every golden seed
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_learned_off_bit_identical_to_golden(seed, installed):
    report = QueryScheduler(devices=1, learned=False).run_online(
        random_workload(seed)
    )
    _golden_matches(report, GOLDEN["seeds"][str(seed)])


# ---------------------------------------------------------------------------
# (b) learned-on keeps every serving invariant
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
def test_learned_on_satisfies_fault_invariants(seed, installed):
    requests = random_workload(seed)
    scheduler = QueryScheduler(devices=2, learned=True)
    report = scheduler.run_online(random_workload(seed))
    check_fault_invariants(
        report,
        FaultPlan(),
        arrivals=len(requests),
        max_retries=scheduler.max_retries,
    )
    for arena in report.arenas:
        assert arena.peak_bytes <= arena.capacity_bytes
        arena.check_invariants()
        assert arena.drained


@pytest.mark.parametrize("seed", (0, 70, 190))
def test_learned_on_replays_deterministically(seed, installed):
    first = QueryScheduler(devices=2, learned=True).run_online(
        random_workload(seed)
    )
    second = QueryScheduler(devices=2, learned=True).run_online(
        random_workload(seed)
    )
    assert fingerprint_sharded(first) == fingerprint_sharded(second)
    assert first.makespan == second.makespan


def test_learned_on_matches_batch_mode(installed):
    """online == batch survives activation: the learned path changes
    which estimates feed the scheduler, never the admission algebra."""
    for seed in (0, 70):
        online = QueryScheduler(devices=2, learned=True).run_online(
            random_workload(seed)
        )
        batch = QueryScheduler(devices=2, learned=True).run(
            random_workload(seed)
        )
        assert fingerprint_sharded(online) == fingerprint_sharded(batch)
        assert online.makespan == batch.makespan


# ---------------------------------------------------------------------------
# (c) the flag without a model is the analytic path
# ---------------------------------------------------------------------------
def test_learned_flag_without_model_is_analytic():
    learned_cost.clear_model()
    seed = SEEDS[0]
    baseline = QueryScheduler(devices=1).run_online(random_workload(seed))
    flagged = QueryScheduler(devices=1, learned=True).run_online(
        random_workload(seed)
    )
    assert fingerprint(flagged) == fingerprint(baseline)
    _golden_matches(flagged, GOLDEN["seeds"][str(seed)])


def test_empty_model_is_analytic(installed):
    learned_cost.set_model(LearnedCostModel({}))
    seed = SEEDS[1]
    report = QueryScheduler(devices=1, learned=True).run_online(
        random_workload(seed)
    )
    _golden_matches(report, GOLDEN["seeds"][str(seed)])
