"""Online admission (incremental schedule extension) vs batch mode.

``QueryScheduler.run_online`` must reproduce ``run``'s per-query
admissions, placements, start/finish times and lane assignments
**exactly** — it only replaces the per-wave full re-simulation with
``PipelineEngine.extend`` over the carried-over lane state.  These
tests pin that equivalence on the mixed serving workload, batched and
staggered, and check the online mode's own determinism and arena
accounting.
"""

import pytest

from repro.bench.serve_bench import fingerprint as _fingerprint
from repro.bench.serve_bench import run_serve, verify_report
from repro.serve import QueryScheduler, mixed_workload


def _assert_schedules_identical(left, right):
    assert set(left.schedule.tasks) == set(right.schedule.tasks)
    for name, expected in right.schedule.tasks.items():
        actual = left.schedule.tasks[name]
        assert (actual.start, actual.finish, actual.lane) == (
            expected.start,
            expected.finish,
            expected.lane,
        ), name


@pytest.mark.parametrize("clients", [1, 4, 8])
def test_online_matches_batch_for_batched_arrivals(clients):
    batch = QueryScheduler().run(mixed_workload(clients))
    online = QueryScheduler().run_online(mixed_workload(clients))
    assert _fingerprint(online) == _fingerprint(batch)
    assert online.makespan == batch.makespan
    assert online.peak_reserved_bytes == batch.peak_reserved_bytes
    _assert_schedules_identical(online, batch)


@pytest.mark.parametrize("spacing", [0.05, 0.25, 1.0])
def test_online_matches_batch_for_staggered_arrivals(spacing):
    """Arrival-driven admission: every submit_at is its own wave."""
    batch = QueryScheduler().run(
        mixed_workload(8, spacing_seconds=spacing)
    )
    online = QueryScheduler().run_online(
        mixed_workload(8, spacing_seconds=spacing)
    )
    assert _fingerprint(online) == _fingerprint(batch)
    assert online.makespan == batch.makespan
    _assert_schedules_identical(online, batch)


def test_online_matches_batch_under_eager_degradation():
    """max_degradation=None exercises the degrade-eagerly policy arm."""
    batch = QueryScheduler(max_degradation=None).run(mixed_workload(8))
    online = QueryScheduler(max_degradation=None).run_online(
        mixed_workload(8)
    )
    assert _fingerprint(online) == _fingerprint(batch)
    assert online.makespan == batch.makespan


def test_online_mode_is_deterministic():
    first = QueryScheduler().run_online(
        mixed_workload(8, spacing_seconds=0.1)
    )
    second = QueryScheduler().run_online(
        mixed_workload(8, spacing_seconds=0.1)
    )
    assert _fingerprint(first) == _fingerprint(second)
    assert first.makespan == second.makespan
    # Same admission order (admit times are part of the fingerprint)
    # and same wall-clock-independent simulated schedule.
    _assert_schedules_identical(first, second)


def test_online_report_passes_serving_guarantees():
    report = QueryScheduler().run_online(mixed_workload(8))
    verify_report(report, clients=8, check_serial=True)
    assert report.peak_reserved_bytes <= report.capacity_bytes


def test_run_serve_online_checks_determinism_and_guarantees():
    report = run_serve(4, online=True, check_determinism=True)
    assert len(report.outcomes) == 4
    assert report.makespan > 0


def test_online_matches_batch_with_widened_lanes():
    """Up-front lane declarations flow into the incremental engine."""
    batch = QueryScheduler(lanes={"h2d": 2}).run(mixed_workload(4))
    online = QueryScheduler(lanes={"h2d": 2}).run_online(mixed_workload(4))
    assert _fingerprint(online) == _fingerprint(batch)
    assert online.makespan == batch.makespan
    _assert_schedules_identical(online, batch)
