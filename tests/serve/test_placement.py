"""Unit tests for the device fleet and placement policies."""

import pytest

from repro.errors import InvalidConfigError, SchedulingError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import ResourcePool, Schedule, ScheduledTask, Task
from repro.serve import (
    DeviceFleet,
    QueryRequest,
    QueryScheduler,
    create_placement_policy,
    mixed_workload,
    registered_placement_policies,
)
from repro.serve.placement import (
    FIRST_FIT,
    LEAST_LOADED,
    ROUND_ROBIN,
    PlacementCandidate,
)

GB = 10**9


def _candidates(*devices: int) -> list[PlacementCandidate]:
    return [
        PlacementCandidate(
            device=device, strategy="gpu_resident", need_bytes=GB,
            fits=True, degraded=False,
        )
        for device in devices
    ]


def _fleet(n: int = 3) -> DeviceFleet:
    return DeviceFleet([8 * GB] * n)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------
def test_policy_registry_lists_all_builtins():
    assert set(registered_placement_policies()) == {
        LEAST_LOADED, FIRST_FIT, ROUND_ROBIN,
    }


def test_unknown_policy_key_rejected():
    with pytest.raises(InvalidConfigError, match="unknown placement policy"):
        create_placement_policy("best_fit_decreasing")
    with pytest.raises(InvalidConfigError):
        QueryScheduler(placement="nope")


def test_policy_instance_passes_through():
    policy = create_placement_policy(ROUND_ROBIN)
    assert create_placement_policy(policy) is policy


def test_least_loaded_prefers_idle_then_lowest_index():
    fleet = _fleet(3)
    policy = create_placement_policy(LEAST_LOADED)
    # All idle: ties break toward device 0.
    assert policy.select(_candidates(0, 1, 2), fleet).device == 0
    # Device 0 busy until t=5, device 1 until t=1, device 2 idle.
    fleet[0].predicted_finish["a"] = 5.0
    fleet[1].predicted_finish["b"] = 1.0
    assert policy.select(_candidates(0, 1, 2), fleet).device == 2
    # Restricted to the busy devices, the lighter one wins.
    assert policy.select(_candidates(0, 1), fleet).device == 1


def test_first_fit_takes_lowest_feasible_device():
    fleet = _fleet(3)
    fleet[0].predicted_finish["a"] = 99.0  # load is irrelevant
    policy = create_placement_policy(FIRST_FIT)
    assert policy.select(_candidates(0, 2), fleet).device == 0
    assert policy.select(_candidates(1, 2), fleet).device == 1


def test_round_robin_cycles_and_skips_infeasible_devices():
    fleet = _fleet(3)
    policy = create_placement_policy(ROUND_ROBIN)
    assert policy.select(_candidates(0, 1, 2), fleet).device == 0
    assert policy.select(_candidates(0, 1, 2), fleet).device == 1
    assert policy.select(_candidates(0, 1, 2), fleet).device == 2
    assert policy.select(_candidates(0, 1, 2), fleet).device == 0
    # Cursor at 1, but only device 0 fits: wraps around to it.
    assert policy.select(_candidates(0), fleet).device == 0
    # reset() rewinds the cursor (the scheduler calls it per run).
    policy.reset()
    assert policy.select(_candidates(0, 1, 2), fleet).device == 0


def test_round_robin_with_no_candidates_raises():
    policy = create_placement_policy(ROUND_ROBIN)
    with pytest.raises(InvalidConfigError):
        policy.select([], _fleet(2))


# ---------------------------------------------------------------------------
# Fleet
# ---------------------------------------------------------------------------
def test_fleet_needs_at_least_one_device():
    with pytest.raises(InvalidConfigError):
        DeviceFleet([])


def test_fleet_devices_have_private_arenas_and_ids():
    fleet = DeviceFleet([4 * GB, 8 * GB])
    assert len(fleet) == 2
    assert [d.arena.device for d in fleet] == [0, 1]
    assert fleet[1].capacity_bytes == 8 * GB
    fleet[0].arena.reserve("q", GB)
    assert fleet[0].free_bytes == 3 * GB
    assert fleet[1].free_bytes == 8 * GB  # untouched


def test_fleet_busy_until_reads_predicted_finishes():
    fleet = _fleet(2)
    assert fleet[0].busy_until() == 0.0
    fleet[0].predicted_finish["a"] = 2.5
    fleet[0].predicted_finish["b"] = 4.0
    assert fleet[0].busy_until() == 4.0


def test_fleet_check_drained_raises_on_leaked_reservation():
    fleet = _fleet(2)
    fleet[1].arena.reserve("leak", GB)
    with pytest.raises(SchedulingError, match="leak"):
        fleet.check_drained()


def test_merged_schedule_is_identity_for_one_device():
    fleet = _fleet(1)
    assert fleet.merged_schedule() is fleet[0].schedule


def test_schedule_merged_unions_tasks_and_rejects_collisions():
    def one(name, device, finish):
        schedule = Schedule(lanes={"gpu": 1 + device})
        task = Task(name=name, resource="gpu", duration=finish, device=device)
        schedule.tasks[name] = ScheduledTask(task, 0.0, finish)
        return schedule

    merged = Schedule.merged([one("a", 0, 1.0), one("b", 1, 3.0)])
    assert set(merged.tasks) == {"a", "b"}
    assert merged.makespan == 3.0
    # Lane counts sum (1 + 2 lanes of the two distinct 'gpu' pools):
    # utilization() stays a genuine fraction of the fleet's capacity.
    assert merged.lanes == {"gpu": 3}
    assert merged.utilization("gpu") <= 1.0
    assert merged.is_merged_view
    with pytest.raises(ValueError, match="more than one device"):
        Schedule.merged([one("a", 0, 1.0), one("a", 1, 2.0)])


def test_extending_a_merged_view_is_refused():
    """A merged reporting view spans devices whose same-named pools are
    distinct physical resources — seeding an engine extension with it
    would silently interleave cross-device lane times, so extend()
    must reject it loudly (a 2-device ServeReport.schedule is merged)."""
    report = QueryScheduler(devices=2).run(mixed_workload(4))
    assert report.schedule.is_merged_view
    engine = PipelineEngine()
    with pytest.raises(SchedulingError, match="merged reporting view"):
        engine.extend(
            report.schedule,
            [Task(name="late", resource="gpu", duration=1.0)],
        )
    # Per-device schedules (devices=1 reports) remain extendable views.
    single = QueryScheduler().run(mixed_workload(2))
    assert not single.schedule.is_merged_view


# ---------------------------------------------------------------------------
# Device-tagged tasks and engines
# ---------------------------------------------------------------------------
def test_engine_rejects_tasks_for_another_device():
    engine = PipelineEngine(device=1)
    engine.add(Task(name="ok", resource="gpu", duration=1.0, device=1))
    with pytest.raises(SchedulingError, match="device"):
        engine.add(Task(name="bad", resource="gpu", duration=1.0, device=0))


def test_engine_extend_rejects_misrouted_tasks_without_side_effects():
    engine = PipelineEngine(device=1)
    engine.add(Task(name="t0", resource="gpu", duration=1.0, device=1))
    schedule = engine.run()
    with pytest.raises(SchedulingError, match="device"):
        engine.extend(
            schedule,
            [Task(name="t1", resource="gpu", duration=1.0, device=0)],
        )
    # The rejected batch rolled back: the engine is still extendable.
    extended = engine.extend(
        schedule, [Task(name="t1", resource="gpu", duration=1.0, device=1)]
    )
    assert extended.tasks["t1"].start == 1.0


def test_engine_rejects_pools_of_another_device():
    with pytest.raises(SchedulingError, match="device"):
        PipelineEngine([ResourcePool("gpu", 1, device=2)], device=0)
    with pytest.raises(SchedulingError):
        PipelineEngine(device=-1)
    with pytest.raises(ValueError):
        ResourcePool("gpu", 1, device=-1)


def test_engine_dict_resources_inherit_the_engine_device():
    """A name->lanes dict describes the engine's own pools, whatever
    device it simulates (an explicit ResourcePool list must match)."""
    engine = PipelineEngine({"h2d": 2}, device=1)
    assert engine.lanes_of("h2d") == 2
    engine.add(Task(name="t", resource="h2d", duration=1.0, device=1))
    assert engine.run().tasks["t"].finish == 1.0


def test_widened_lanes_work_on_a_sharded_fleet():
    """QueryScheduler(lanes=...) must flow into every device's engine —
    batch and online bit-identical, like the single-device case."""
    from repro.bench.serve_bench import fingerprint_sharded

    batch = QueryScheduler(devices=2, lanes={"h2d": 2}).run(mixed_workload(8))
    online = QueryScheduler(devices=2, lanes={"h2d": 2}).run_online(
        mixed_workload(8)
    )
    assert fingerprint_sharded(online) == fingerprint_sharded(batch)
    assert online.makespan == batch.makespan
    assert {o.device for o in batch.outcomes} == {0, 1}


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------
def test_scheduler_rejects_bad_device_count():
    with pytest.raises(InvalidConfigError):
        QueryScheduler(devices=0)


def test_sharded_report_carries_placements_and_peaks():
    report = QueryScheduler(devices=2).run(mixed_workload(8))
    assert report.devices == 2
    assert len(report.device_peak_bytes) == 2
    assert {o.device for o in report.outcomes} <= {0, 1}
    # Tasks in the merged schedule carry their query's device tag.
    for outcome in report.outcomes:
        for name, item in report.schedule.tasks.items():
            if name.startswith(f"{outcome.qid}:"):
                assert item.task.device == outcome.device


def test_sharded_render_includes_device_column():
    sharded = QueryScheduler(devices=2).run(mixed_workload(4)).render()
    assert "dev" in sharded
    single = QueryScheduler().run(mixed_workload(4)).render()
    assert "dev" not in single


def test_pinned_strategy_too_big_for_any_device_raises():
    from repro.serve.workload import M
    from repro.data.spec import unique_pair

    with pytest.raises(SchedulingError, match="never be admitted"):
        QueryScheduler(devices=2).run(
            [QueryRequest(qid="q0", spec=unique_pair(1024 * M),
                          strategy="gpu_resident")]
        )
