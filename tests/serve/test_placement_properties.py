"""Property-based differential suite for the sharded serving layer.

Runs the scheduler over 200 seeded randomized workloads
(:func:`repro.serve.workload.random_workload` — mixed placement
regimes, batched and staggered arrivals) and asserts, per seed:

(a) **Legacy equivalence** — ``devices=1`` reproduces, bit for bit,
    the single-device schedule recorded *before* the placement layer
    existed (``golden_single_device.json``, captured by
    ``tools/capture_serve_golden.py``): same admissions, strategies,
    reservations, admit/finish times, makespan and peak;
(b) **Online == batch** — for every fleet size, incremental extension
    (:meth:`~repro.serve.scheduler.QueryScheduler.run_online`) matches
    the batch re-simulation exactly, device assignments included;
(c) **Arena accounting** — every device's peak stays within capacity,
    every ledger drains (no reservation outlives its query), and every
    timeline ends at zero used bytes;
(d) **Sharding monotonicity** — adding devices never increases the
    fleet makespan on these workloads.

The golden file is the refactor's falsifier: regenerating it
re-baselines (a) from current behaviour, so only do that deliberately
for a reviewed change — never to turn a red suite green.
"""

import json
from pathlib import Path

import pytest

from repro.bench.serve_bench import fingerprint, fingerprint_sharded
from repro.serve import QueryScheduler, mixed_workload, random_workload

GOLDEN_PATH = Path(__file__).parent / "golden_single_device.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

#: Fleet sizes the differential checks sweep.
FLEETS = (1, 2, 3)

SEEDS = sorted(int(seed) for seed in GOLDEN["seeds"])


def _golden_matches(report, entry) -> None:
    assert [list(item) for item in fingerprint(report)] == entry["fingerprint"]
    assert report.makespan == entry["makespan"]
    assert report.peak_reserved_bytes == entry["peak_reserved_bytes"]


def _check_arenas(report) -> None:
    assert report.arenas is not None and len(report.arenas) == report.devices
    for arena in report.arenas:
        assert arena.peak_bytes <= arena.capacity_bytes
        arena.check_invariants()
        # Ledger sums to zero after drain: no reservation outlived its
        # query, and the recorded timeline returns to an empty device.
        assert arena.drained
        assert arena.used_bytes == 0
        if arena.timeline:
            assert arena.timeline[-1][1] == 0


def test_golden_covers_200_seeds():
    assert len(SEEDS) >= 200
    assert SEEDS == list(range(len(SEEDS)))


@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_differential(seed):
    entry = GOLDEN["seeds"][str(seed)]
    spans = {}
    for devices in FLEETS:
        batch = QueryScheduler(devices=devices).run(random_workload(seed))
        online = QueryScheduler(devices=devices).run_online(
            random_workload(seed)
        )
        # (b) online == batch, including which device each query ran on.
        assert fingerprint_sharded(online) == fingerprint_sharded(batch)
        assert online.makespan == batch.makespan
        assert online.device_peak_bytes == batch.device_peak_bytes
        # (c) per-device arena accounting, both modes.
        _check_arenas(batch)
        _check_arenas(online)
        assert all(0 <= o.device < devices for o in batch.outcomes)
        spans[devices] = batch.makespan
        if devices == 1:
            # (a) sharded devices=1 == the recorded legacy schedule.
            _golden_matches(batch, entry)
            assert all(o.device == 0 for o in batch.outcomes)
    # (d) makespan never increases with fleet size.
    for smaller, larger in zip(FLEETS, FLEETS[1:]):
        assert spans[larger] <= spans[smaller] * (1 + 1e-12), (
            f"seed {seed}: {larger} devices made the makespan worse "
            f"({spans[larger]!r} vs {spans[smaller]!r})"
        )


@pytest.mark.parametrize("name", sorted(GOLDEN["canonical"]))
def test_canonical_workloads_match_golden(name):
    clients, spacing = name.split("x")
    report = QueryScheduler(devices=1).run(
        mixed_workload(int(clients), spacing_seconds=float(spacing))
    )
    _golden_matches(report, GOLDEN["canonical"][name])


def test_two_devices_beat_one_on_the_64_client_acceptance_workload():
    """The acceptance bar: sharding the canonical serve_wall[64]
    workload across two devices must strictly beat one device (online
    mode — outcomes are identical to batch, pinned above)."""
    one = QueryScheduler(devices=1).run_online(mixed_workload(64))
    two = QueryScheduler(devices=2).run_online(mixed_workload(64))
    assert two.makespan < one.makespan
    # Genuine sharding, not one hot device: both devices took queries.
    assert {o.device for o in two.outcomes} == {0, 1}
    _check_arenas(two)


@pytest.mark.parametrize("placement", ["first_fit", "round_robin"])
def test_alternative_policies_hold_the_core_properties(placement):
    """Every registered policy keeps determinism, online==batch and the
    arena invariants — only the default policy's makespan is tracked."""
    for seed in SEEDS[:25]:
        batch = QueryScheduler(devices=2, placement=placement).run(
            random_workload(seed)
        )
        online = QueryScheduler(devices=2, placement=placement).run_online(
            random_workload(seed)
        )
        assert fingerprint_sharded(online) == fingerprint_sharded(batch)
        assert online.makespan == batch.makespan
        _check_arenas(batch)
