"""Admission-controlled multi-query scheduling."""

import pytest

from repro.core.strategy import GPU_RESIDENT, STREAMING, strategy_factory
from repro.data.spec import unique_pair
from repro.errors import InvalidConfigError, SchedulingError
from repro.bench.serve_bench import fingerprint as _fingerprint
from repro.serve import QueryRequest, QueryScheduler, mixed_workload
from repro.serve.workload import M


def test_empty_batch():
    report = QueryScheduler().run([])
    assert report.outcomes == []
    assert report.makespan == 0.0


def test_single_query_matches_solo_estimate():
    report = QueryScheduler().run(
        [QueryRequest(qid="q0", spec=unique_pair(16 * M))]
    )
    (outcome,) = report.outcomes
    assert outcome.strategy == GPU_RESIDENT
    assert not outcome.degraded
    assert report.makespan == pytest.approx(outcome.solo_seconds, rel=1e-12)


def test_duplicate_ids_rejected():
    spec = unique_pair(16 * M)
    with pytest.raises(InvalidConfigError):
        QueryScheduler().run(
            [QueryRequest(qid="q", spec=spec), QueryRequest(qid="q", spec=spec)]
        )


def test_impossible_query_raises():
    # Pinned to GPU-resident at a size that can never fit the device.
    with pytest.raises(SchedulingError):
        QueryScheduler().run(
            [
                QueryRequest(
                    qid="q0", spec=unique_pair(1024 * M), strategy=GPU_RESIDENT
                )
            ]
        )


def test_admission_degrades_strategy_under_pressure():
    """Two queries that are GPU-resident alone cannot both hold their
    resident working sets; the second degrades to streaming."""
    scheduler = QueryScheduler(max_degradation=None)
    spec = unique_pair(96 * M)
    resident_need = strategy_factory(GPU_RESIDENT).device_bytes_needed(
        spec, scheduler.system
    )
    streaming_need = strategy_factory(STREAMING).device_bytes_needed(
        spec, scheduler.system
    )
    capacity = scheduler.system.gpu.device_memory
    assert resident_need <= capacity < 2 * resident_need
    assert resident_need + streaming_need <= capacity

    report = scheduler.run(
        [
            QueryRequest(qid="q0", spec=spec),
            QueryRequest(qid="q1", spec=spec),
        ]
    )
    first, second = report.outcomes
    assert first.strategy == GPU_RESIDENT and not first.degraded
    assert second.strategy == STREAMING
    assert second.degraded and second.solo_strategy == GPU_RESIDENT
    assert second.admit_at == 0.0  # co-resident, not queued


def test_bounded_degradation_waits_instead():
    """With a tight degradation bound the second query queues for the
    first one's memory instead of taking a much slower placement."""
    spec = unique_pair(96 * M)
    report = QueryScheduler(max_degradation=1.0).run(
        [
            QueryRequest(qid="q0", spec=spec),
            QueryRequest(qid="q1", spec=spec),
        ]
    )
    first, second = report.outcomes
    assert not second.degraded
    assert second.strategy == GPU_RESIDENT
    assert second.admit_at == pytest.approx(first.finish_at)
    assert second.wait_seconds > 0


def test_arena_accounting_never_exceeds_device_memory():
    report = QueryScheduler().run(mixed_workload(12, scale=0.5))
    assert 0 < report.peak_reserved_bytes <= report.capacity_bytes


def test_concurrent_beats_serial_on_mixed_workload():
    report = QueryScheduler().run(mixed_workload(8))
    assert report.makespan < report.serial_seconds
    assert report.speedup > 1.0


def test_schedule_is_deterministic():
    a = QueryScheduler().run(mixed_workload(10, scale=0.5))
    b = QueryScheduler().run(mixed_workload(10, scale=0.5))
    assert _fingerprint(a) == _fingerprint(b)


def test_tasks_respect_admission_release_times():
    """No task of a query may start before the query was admitted."""
    report = QueryScheduler().run(mixed_workload(8, scale=0.5))
    for outcome in report.outcomes:
        starts = [
            item.start
            for name, item in report.schedule.tasks.items()
            if name.startswith(f"{outcome.qid}:")
        ]
        assert starts and min(starts) >= outcome.admit_at
        assert outcome.finish_at == pytest.approx(
            max(
                item.finish
                for name, item in report.schedule.tasks.items()
                if name.startswith(f"{outcome.qid}:")
            )
        )


def test_staggered_submissions_respected():
    requests = mixed_workload(4, scale=0.25, spacing_seconds=0.5)
    report = QueryScheduler().run(requests)
    for request, outcome in zip(requests, report.outcomes):
        assert outcome.submit_at == request.submit_at
        assert outcome.admit_at >= request.submit_at
        assert outcome.latency_seconds >= 0


def test_report_renders_summary():
    report = QueryScheduler().run(mixed_workload(4, scale=0.25))
    text = report.render()
    assert "makespan" in text
    assert "q000" in text
