"""Property-based differential suite for steady-state streaming.

Runs :meth:`~repro.serve.scheduler.QueryScheduler.run_stream` over 120
seeded randomized workloads (mixed placement regimes, batched and
staggered arrivals) and asserts, per seed and fleet size 1/2/3:

(a) **Streaming == online** — with shedding disabled, the compacted
    streaming run (most aggressive cadence, ``compact_every=1``) and
    the uncompacted one both reproduce
    :meth:`~repro.serve.scheduler.QueryScheduler.run_online`'s
    per-query admissions, strategies, reservations, placements, admit
    and finish times, final makespan and per-device memory peaks —
    bit for bit.  Compaction must be invisible in every outcome;
(b) **Arena accounting** — every device's arena stays within capacity
    and drains, in streaming mode exactly as in online mode;
(c) **Accounting totality** — completed + shed == arrivals, always.

Separate tests pin the backpressure policy: shedding is deterministic,
the queue-depth cap is honoured (no recorded depth ever exceeds it),
per-query SLOs override the fleet default, and the retained schedule
stays bounded by in-flight work.
"""

import pytest

from repro.errors import InvalidConfigError
from repro.serve import (
    QueryRequest,
    QueryScheduler,
    percentile,
    random_workload,
    stream_workload,
)
from repro.serve.workload import _resident, M

#: Seeds of the streaming differential — at least 100 by contract.
SEEDS = range(120)

#: Fleet sizes the differential checks sweep.
FLEETS = (1, 2, 3)


def _outcome_map(outcomes):
    return {
        o.qid: (o.device, o.strategy, o.reserved_bytes, o.admit_at,
                o.finish_at, o.solo_seconds)
        for o in outcomes
    }


def _check_arenas(report) -> None:
    assert report.arenas is not None and len(report.arenas) == report.devices
    for arena in report.arenas:
        assert arena.peak_bytes <= arena.capacity_bytes
        arena.check_invariants()
        assert arena.drained
        assert arena.used_bytes == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_stream_differential(seed):
    requests = random_workload(seed)
    for devices in FLEETS:
        online = QueryScheduler(devices=devices).run_online(requests)
        compacted = QueryScheduler(devices=devices).run_stream(
            iter(requests), compact_every=1
        )
        uncompacted = QueryScheduler(devices=devices).run_stream(
            iter(requests), compact_every=None
        )
        for stream in (compacted, uncompacted):
            # (c) totality: nothing shed, nothing lost.
            assert stream.shed == []
            assert stream.arrivals == len(requests)
            assert stream.completed + stream.shed_count == stream.arrivals
            # (a) identical outcomes, device assignments included.
            assert _outcome_map(stream.outcomes) == _outcome_map(
                online.outcomes
            )
            assert stream.makespan == online.makespan
            assert stream.device_peak_bytes == online.device_peak_bytes
            # (b) arena accounting in streaming mode.
            _check_arenas(stream)
        # Aggressive compaction actually retired work (whenever any
        # query finished before the last admission; with >= 2 queries
        # the final release always retires at the end-of-loop sweep).
        assert compacted.retired_tasks >= 0
        assert (
            compacted.peak_retained_tasks <= uncompacted.peak_retained_tasks
        )


def test_shedding_is_deterministic_and_accounted():
    def run():
        return QueryScheduler(devices=2).run_stream(
            stream_workload(600, arrival_rate=300.0, seed=3),
            max_queue_depth=16,
            slo_wait_seconds=1.0,
            compact_every=32,
        )

    first, second = run(), run()
    assert first.arrivals == 600
    assert first.completed + first.shed_count == 600
    assert first.shed_count > 0  # the limits actually engaged
    assert [tuple(vars(s).values()) for s in first.shed] == [
        tuple(vars(s).values()) for s in second.shed
    ]
    assert _outcome_map(first.outcomes) == _outcome_map(second.outcomes)
    assert first.makespan == second.makespan
    for item in first.shed:
        assert item.reason in ("queue_full", "slo_wait")
        if item.reason == "queue_full":
            assert item.queue_depth >= 16
        else:
            assert item.estimated_wait_seconds > 1.0
    _check_arenas(first)


def test_queue_depth_cap_is_honoured():
    report = QueryScheduler().run_stream(
        stream_workload(400, arrival_rate=400.0, seed=5),
        max_queue_depth=8,
    )
    assert report.queue_depths, "every arrival samples the depth"
    assert len(report.queue_depths) == report.arrivals
    assert report.peak_queue_depth <= 8
    assert any(s.reason == "queue_full" for s in report.shed)


def test_per_query_slo_overrides_fleet_default():
    spec = _resident(32 * M)
    # Three identical queries arriving back-to-back: the first admits
    # onto an idle fleet; the later ones see a positive estimated wait.
    strict = [
        QueryRequest(qid=f"q{i}", spec=spec, submit_at=0.0,
                     slo_wait_seconds=0.0)
        for i in range(3)
    ]
    report = QueryScheduler().run_stream(
        iter(strict), slo_wait_seconds=1e9
    )
    # Per-query zero-wait SLO sheds despite the generous fleet default.
    assert report.completed >= 1
    assert report.shed_count >= 1
    assert all(s.reason == "slo_wait" for s in report.shed)

    lenient = [
        QueryRequest(qid=f"q{i}", spec=spec, submit_at=0.0,
                     slo_wait_seconds=1e9)
        for i in range(3)
    ]
    report = QueryScheduler().run_stream(iter(lenient), slo_wait_seconds=0.0)
    # Per-query generous SLO overrides the zero-wait fleet default.
    assert report.shed == []
    assert report.completed == 3


def test_retained_schedule_bounded_by_inflight_work():
    report = QueryScheduler(devices=2).run_stream(
        stream_workload(300, arrival_rate=150.0, seed=11),
        compact_every=8,
    )
    assert report.compactions > 0
    assert report.retired_tasks > 0
    assert report.max_tasks_per_query > 0
    assert report.peak_retained_tasks <= (
        report.peak_inflight_tasks + 8 * report.max_tasks_per_query
    )
    # Without compaction the same stream retains every task ever
    # scheduled — the O(total arrivals) growth compaction removes.
    unbounded = QueryScheduler(devices=2).run_stream(
        stream_workload(300, arrival_rate=150.0, seed=11),
        compact_every=None,
    )
    assert unbounded.peak_retained_tasks > report.peak_retained_tasks


def test_stream_validates_input():
    spec = _resident(4 * M)
    backwards = [
        QueryRequest(qid="a", spec=spec, submit_at=1.0),
        QueryRequest(qid="b", spec=spec, submit_at=0.5),
    ]
    with pytest.raises(InvalidConfigError, match="sorted"):
        QueryScheduler().run_stream(iter(backwards))
    dupes = [
        QueryRequest(qid="a", spec=spec, submit_at=0.0),
        QueryRequest(qid="a", spec=spec, submit_at=1.0),
    ]
    with pytest.raises(InvalidConfigError, match="unique"):
        QueryScheduler().run_stream(iter(dupes))
    with pytest.raises(InvalidConfigError, match="max_queue_depth"):
        QueryScheduler().run_stream(iter([]), max_queue_depth=0)
    with pytest.raises(InvalidConfigError, match="slo_wait_seconds"):
        QueryScheduler().run_stream(iter([]), slo_wait_seconds=-1.0)
    with pytest.raises(InvalidConfigError, match="compact_every"):
        QueryScheduler().run_stream(iter([]), compact_every=0)
    with pytest.raises(InvalidConfigError, match="negative slo"):
        QueryRequest(qid="a", spec=spec, slo_wait_seconds=-0.1)


def test_empty_stream():
    report = QueryScheduler().run_stream(iter([]))
    assert report.arrivals == 0
    assert report.completed == 0
    assert report.shed == []
    assert report.makespan == 0.0
    assert report.sustained_qps == 0.0
    assert report.p99_latency == 0.0
    assert report.render()  # renders without crashing


def test_percentile_helper_matches_pinned_convention():
    """The shared helper reproduces the nearest-rank formula
    ``ServeReport.p95_latency`` has always used."""
    import math

    values = [5.0, 1.0, 4.0, 2.0, 3.0]
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        ordered = sorted(values)
        rank = math.ceil(q * len(ordered)) - 1
        expected = ordered[max(0, min(len(ordered) - 1, rank))]
        assert percentile(values, q) == expected
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_empty_kwarg_reports_absence():
    """Report-level percentiles keep the historical 0.0-for-empty
    convention (pinned above); group-level stats pass ``empty=None`` so
    an empty class reports *no* latency instead of a fake 0.0 one."""
    assert percentile([], 0.5, empty=None) is None
    assert percentile([], 0.99, empty=0.0) == 0.0
    assert percentile([3.0], 0.5, empty=None) == 3.0


def test_empty_class_group_reports_na_not_zero():
    """A class whose every query was shed at deadline expiry has no
    completions: its latencies are None and render as ``n/a`` — not as
    an impossibly perfect 0.000 s."""
    from types import SimpleNamespace

    from repro.serve.scheduler import _fmt_secs, _group_class_stats

    shed = [
        SimpleNamespace(reason="deadline_expired", class_name="batch"),
        SimpleNamespace(reason="queue_full", class_name="ignored"),
    ]
    stats = _group_class_stats([], "class_name", shed)
    assert set(stats) == {"batch"}  # queue_full sheds don't make groups
    group = stats["batch"]
    assert group.count == 0
    assert group.mean_latency is None
    assert group.p50_latency is None
    assert group.p99_latency is None
    assert group.deadline_miss_rate == 1.0  # expired sheds are misses
    assert _fmt_secs(group.p50_latency) == "n/a"
    assert _fmt_secs(1.5) == "1.500"
