"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or obj is errors.ReproError


def test_capacity_specializations():
    assert issubclass(errors.SharedMemoryOverflowError, errors.CapacityError)
    assert issubclass(errors.DeviceMemoryOverflowError, errors.CapacityError)
    assert issubclass(errors.SchedulingError, errors.PipelineError)


def test_single_except_clause_catches_library_failures():
    from repro.data.spec import RelationSpec

    with pytest.raises(errors.ReproError):
        RelationSpec(n=0)
