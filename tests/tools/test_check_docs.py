"""The CI docs checker: link resolution, anchors, and README doctests."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def test_repo_docs_are_clean():
    assert check_docs.check_links() == []
    assert check_docs.check_doctests() == []


def test_github_anchor_slugs():
    assert check_docs.github_anchor("The arena ledger") == "the-arena-ledger"
    assert check_docs.github_anchor("Batch vs online mode") == (
        "batch-vs-online-mode"
    )
    assert check_docs.github_anchor("`JoinStrategy` protocol + registry "
                                    "(`repro.core.strategy`)") == (
        "joinstrategy-protocol--registry-reprocorestrategy"
    )


def test_broken_link_and_anchor_detected(tmp_path, monkeypatch):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "real.md").write_text("# A Heading\n\ntext\n")
    (tmp_path / "README.md").write_text(
        "[ok](docs/real.md)\n"
        "[ok anchor](docs/real.md#a-heading)\n"
        "[ghost](docs/missing.md)\n"
        "[bad anchor](docs/real.md#nope)\n"
        "[external](https://example.com/nothing)\n"
        "```pycon\n>>> 1 + 1\n2\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_links()
    assert len(errors) == 2
    assert any("missing.md" in error for error in errors)
    assert any("#nope" in error for error in errors)
    assert check_docs.check_doctests() == []


def test_failing_doctest_detected(tmp_path, monkeypatch):
    (tmp_path / "README.md").write_text("```pycon\n>>> 1 + 1\n3\n```\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_doctests()
    assert len(errors) == 1
    assert "doctest" in errors[0]


def test_missing_quickstart_block_detected(tmp_path, monkeypatch):
    (tmp_path / "README.md").write_text("no snippets here\n")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_doctests()
    assert any("pycon" in error for error in errors)


def test_links_inside_code_fences_ignored(tmp_path, monkeypatch):
    (tmp_path / "README.md").write_text(
        "```\n[not a link](nowhere.md)\n```\n```pycon\n>>> 2\n2\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    assert check_docs.check_links() == []


def test_anchor_with_code_backticks_resolves(tmp_path, monkeypatch):
    """GitHub strips backticks (and other emphasis) when slugging a
    heading; a link written against the rendered anchor must resolve
    even though the source heading contains `` ` `` characters."""
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "api.md").write_text(
        "# The `QueryScheduler` API\n\n"
        "## `run` vs `run_online` **modes**\n\ntext\n"
    )
    (tmp_path / "README.md").write_text(
        "[api](docs/api.md#the-queryscheduler-api)\n"
        "[modes](docs/api.md#run-vs-run_online-modes)\n"
        "[wrong](docs/api.md#the-%60queryscheduler%60-api)\n"
        "```pycon\n>>> 1\n1\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_links()
    # The two stripped-backtick anchors resolve; the percent-encoded
    # backtick form is not a rendered anchor and must be flagged.
    assert len(errors) == 1
    assert "%60" in errors[0]


def test_link_to_directory_resolves_without_anchor_check(tmp_path, monkeypatch):
    """A link target may be a directory (``docs/``, a package path);
    it resolves by existence and never gets anchor-checked — but a
    fragment on a *missing* directory is still a broken link."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "guide.md").write_text("# Guide\n")
    (tmp_path / "README.md").write_text(
        "[docs tree](docs/)\n"
        "[docs noslash](docs)\n"
        "[ghost dir](missing/)\n"
        "```pycon\n>>> 1\n1\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_links()
    assert len(errors) == 1
    assert "missing/" in errors[0]
