#!/usr/bin/env python
"""Capture golden single-device serving schedules.

Writes ``tests/serve/golden_single_device.json``: the per-query outcome
fingerprint, makespan and peak reservation of the **single-device**
scheduler on every randomized property-suite workload
(:func:`repro.serve.workload.random_workload`, seeds ``0..N-1``) plus a
ladder of canonical mixed workloads.  The sharded serving layer's
``devices=1`` mode is pinned bit-identical against this file
(``tests/serve/test_placement_properties.py``), which is what makes the
multi-GPU refactor falsifiable: any drift in admission order, placement,
reservation size or simulated finish times on one device fails the
suite.

Re-running this script re-baselines the pin from the *current* code —
only do that deliberately, for a reviewed behaviour change, never to
make a red suite green.  Usage::

    PYTHONPATH=src python tools/capture_serve_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "serve" / "golden_single_device.json"

#: Seeds of the randomized differential suite.
N_SEEDS = 200
#: Canonical mixed-workload ladder: (clients, spacing_seconds).
CANONICAL = ((1, 0.0), (2, 0.0), (4, 0.0), (8, 0.0), (16, 0.0), (8, 0.25))


def _entry(report) -> dict:
    from repro.bench.serve_bench import fingerprint

    return {
        "fingerprint": [list(item) for item in fingerprint(report)],
        "makespan": report.makespan,
        "peak_reserved_bytes": report.peak_reserved_bytes,
    }


def capture() -> dict:
    from repro.serve import QueryScheduler, mixed_workload, random_workload

    def run(requests):
        return QueryScheduler().run(requests)

    return {
        "seeds": {
            str(seed): _entry(run(random_workload(seed)))
            for seed in range(N_SEEDS)
        },
        "canonical": {
            f"{clients}x{spacing}": _entry(
                run(mixed_workload(clients, spacing_seconds=spacing))
            )
            for clients, spacing in CANONICAL
        },
    }


def main() -> int:
    payload = capture()
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"captured {len(payload['seeds'])} seeds + "
        f"{len(payload['canonical'])} canonical workloads -> "
        f"{GOLDEN_PATH.relative_to(REPO_ROOT)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
