#!/usr/bin/env python
"""CI docs check: relative links and README doctests.

Two gates, run on every PR (``python tools/check_docs.py``):

1. **Relative links** — every markdown link or image in ``README.md``
   and ``docs/*.md`` that points at a repository path must resolve:
   the target file (or directory) exists, and when the link carries a
   ``#fragment``, the target document contains a heading with that
   GitHub-style anchor.  External (``http(s)://``, ``mailto:``) links
   are not checked — CI must not depend on the network.
2. **README doctests** — every fenced ```` ```pycon ```` block in
   ``README.md`` is executed with :mod:`doctest`
   (``NORMALIZE_WHITESPACE``, so expected output may wrap), keeping
   the quickstart honest as the API evolves.

Exits non-zero listing every failure.  Needs the package importable
(``pip install -e .`` or ``PYTHONPATH=src``).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links/images: ``[text](target)`` / ``![alt](target)``.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^```")
_PYCON_FENCE = re.compile(r"^```pycon\s*$")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: strip markdown emphasis/code and
    punctuation, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(github_anchor(match.group(2)))
    return anchors


def iter_links(path: Path) -> list[tuple[int, str]]:
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_links() -> list[str]:
    errors: list[str] = []
    for path in doc_files():
        for lineno, target in iter_links(path):
            where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            resolved = (path.parent / base).resolve() if base else path
            if not resolved.exists():
                errors.append(f"{where}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if github_anchor(fragment) not in anchors_of(resolved):
                    errors.append(
                        f"{where}: missing anchor #{fragment} in "
                        f"{resolved.relative_to(REPO_ROOT)}"
                    )
    return errors


def pycon_blocks(path: Path) -> list[tuple[int, str]]:
    """``(starting line, snippet)`` for every ```` ```pycon ```` fence."""
    blocks: list[tuple[int, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        if _PYCON_FENCE.match(lines[index]):
            start = index + 1
            body: list[str] = []
            index += 1
            while index < len(lines) and not _FENCE.match(lines[index]):
                body.append(lines[index])
                index += 1
            blocks.append((start, "\n".join(body) + "\n"))
        index += 1
    return blocks


def check_doctests() -> list[str]:
    readme = REPO_ROOT / "README.md"
    errors: list[str] = []
    runner = doctest.DocTestRunner(
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    parser = doctest.DocTestParser()
    for lineno, snippet in pycon_blocks(readme):
        test = doctest.DocTest(
            examples=parser.get_examples(snippet),
            globs={},
            name=f"README.md:{lineno}",
            filename=str(readme),
            lineno=lineno,
            docstring=snippet,
        )
        result = runner.run(test, clear_globs=True)
        if result.failed:
            errors.append(
                f"README.md:{lineno}: {result.failed} of "
                f"{result.attempted} doctest example(s) failed "
                "(re-run with python -m doctest on the snippet for detail)"
            )
    if not pycon_blocks(readme):
        errors.append("README.md: no ```pycon quickstart block found")
    return errors


def main() -> int:
    errors = check_links() + check_doctests()
    for error in errors:
        print(error)
    checked = len(doc_files())
    if errors:
        print(f"{len(errors)} docs problem(s) across {checked} file(s)")
        return 1
    print(f"docs ok: links and README doctests pass in {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
